package exec

import (
	"fmt"
	"sync"

	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// RunCollect executes the plan bottom-up, materializing every operator's
// output and stamping TrueCard on every node. This is the training-sample
// collector (the paper obtains per-node cardinalities via EXPLAIN ANALYZE);
// joins always run hashed since cardinalities do not depend on the physical
// operator. It returns the root cardinality.
func RunCollect(ctx *Ctx, root *plan.Node) (int, error) {
	rows, err := collect(ctx, root)
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

func collect(ctx *Ctx, n *plan.Node) ([][]int64, error) {
	switch {
	case n.Op == plan.MatScan:
		n.TrueCard = float64(n.Mat.Card())
		return n.Mat.Rows, nil
	case n.IsLeaf():
		return collectScan(ctx, n)
	default:
		l, err := collect(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		r, err := collect(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return collectJoin(ctx, n, l, r)
	}
}

func collectScan(ctx *Ctx, n *plan.Node) ([][]int64, error) {
	t := ctx.DB.Table(n.Table)
	var out [][]int64
	nrows := t.NumRows()
	width := len(t.Meta.Columns)
	for r := 0; r < nrows; r++ {
		if err := ctx.charge(1); err != nil {
			return nil, err
		}
		if !rowMatches(t, r, n.Preds) {
			continue
		}
		row := make([]int64, width)
		for c := 0; c < width; c++ {
			row[c] = t.Cols[c][r]
		}
		out = append(out, row)
	}
	n.TrueCard = float64(len(out))
	return out, nil
}

func collectJoin(ctx *Ctx, n *plan.Node, left, right [][]int64) ([][]int64, error) {
	conds, err := resolveConds(ctx, n.JoinConds, n.Left.Tables, n.Right.Tables)
	if err != nil {
		return nil, err
	}
	merge := newJoinMerge(ctx, n.Left.Tables, n.Right.Tables)

	// build on the smaller side for speed; swap offsets if we build left
	build, probe := right, left
	buildRight := true
	if len(left) < len(right) {
		build, probe = left, right
		buildRight = false
	}
	table := make(map[uint64][][]int64, len(build))
	key := make([]int64, len(conds))
	for _, row := range build {
		for i, c := range conds {
			if buildRight {
				key[i] = row[c.rightOff]
			} else {
				key[i] = row[c.leftOff]
			}
		}
		k := hashKey(key)
		table[k] = append(table[k], row)
		if err := ctx.charge(1); err != nil {
			return nil, err
		}
	}
	var out [][]int64
	for _, row := range probe {
		for i, c := range conds {
			if buildRight {
				key[i] = row[c.leftOff]
			} else {
				key[i] = row[c.rightOff]
			}
		}
		if err := ctx.charge(1); err != nil {
			return nil, err
		}
		for _, m := range table[hashKey(key)] {
			if err := ctx.charge(1); err != nil {
				return nil, err
			}
			l, r := row, m
			if !buildRight {
				l, r = m, row
			}
			match := true
			for _, c := range conds {
				if l[c.leftOff] != r[c.rightOff] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			t := merge.merge(nil, l, r)
			// width-weighted charge: the budget bounds buffered memory
			if err := ctx.charge(int64(len(t)) / 4); err != nil {
				return nil, err
			}
			cp := make([]int64, len(t))
			copy(cp, t)
			out = append(out, cp)
		}
	}
	n.TrueCard = float64(len(out))
	return out, nil
}

// TrueCardOracle computes exact cardinalities for arbitrary table subsets
// of a query by *pipelined* execution of the canonical left-deep plan —
// only single-table hash builds are buffered, so memory stays bounded even
// for huge results; a work budget bounds time. It is the ground-truth
// estimator in accuracy experiments and tests. Results are memoized per
// (query, subset); the memo is mutex-guarded, so one oracle may be shared
// across concurrent workload workers.
type TrueCardOracle struct {
	DB *storage.Database
	// Budget bounds the work per exact count; zero means unlimited.
	// Experiment harnesses use TryEstimate with a budget to curate test
	// queries whose true cardinality is computable (the paper analogously
	// selects test queries by their PostgreSQL execution time).
	Budget int64

	mu    sync.RWMutex
	cache map[oracleKey]float64
}

type oracleKey struct {
	q    *query.Query
	mask query.BitSet
}

// NewTrueCardOracle returns an unbounded oracle over db.
func NewTrueCardOracle(db *storage.Database) *TrueCardOracle {
	return &TrueCardOracle{DB: db, cache: make(map[oracleKey]float64)}
}

// Name implements the estimator interface.
func (o *TrueCardOracle) Name() string { return "oracle" }

// TryEstimate returns the exact cardinality of joining the subset, or
// ErrBudget when the count is not computable within the oracle's budget.
func (o *TrueCardOracle) TryEstimate(q *query.Query, mask query.BitSet) (float64, error) {
	k := oracleKey{q, mask}
	o.mu.RLock()
	v, ok := o.cache[k]
	o.mu.RUnlock()
	if ok {
		return v, nil
	}
	// compute outside the lock: exact counts are deterministic, so racing
	// duplicates write the same value
	node := CanonicalPlan(q, mask)
	ctx := &Ctx{DB: o.DB, Q: q, Budget: o.Budget}
	count, err := RunBatch(ctx, node)
	if err != nil {
		return 0, err
	}
	v = float64(count)
	o.mu.Lock()
	o.cache[k] = v
	o.mu.Unlock()
	return v, nil
}

// EstimateSubset returns the exact cardinality of joining the subset,
// panicking if the oracle's budget is exceeded (callers curate queries via
// TryEstimate first).
func (o *TrueCardOracle) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	v, err := o.TryEstimate(q, mask)
	if err != nil {
		panic(fmt.Sprintf("exec: oracle failed: %v", err))
	}
	return v
}

// CanonicalPlan builds the canonical left-deep logical plan for a table
// subset: relations joined in ascending local-index order, each new
// relation attached with every join condition it shares with the prefix.
// The learned estimators featurize subsets through this same canonical
// shape, so one subset always maps to one feature sequence.
func CanonicalPlan(q *query.Query, mask query.BitSet) *plan.Node {
	idxs := mask.Indices()
	if len(idxs) == 0 {
		panic("exec: canonical plan of empty subset")
	}
	mk := func(i int) *plan.Node {
		t := q.Tables[i]
		return plan.NewLeaf(plan.SeqScan, t, i, q.PredsOn(t))
	}
	cur := mk(idxs[0])
	covered := query.NewBitSet().Set(idxs[0])
	remaining := append([]int(nil), idxs[1:]...)
	for len(remaining) > 0 {
		// pick the lowest-index remaining table connected to the prefix, so
		// the canonical tree never contains cross products when the subset
		// is connected
		pick := -1
		for pi, i := range remaining {
			single := query.NewBitSet().Set(i)
			if len(q.JoinsBetween(covered, single)) > 0 {
				pick = pi
				break
			}
		}
		if pick == -1 {
			pick = 0 // disconnected subset: accept a cross join
		}
		i := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		single := query.NewBitSet().Set(i)
		conds := q.JoinsBetween(covered, single)
		cur = plan.NewJoin(plan.HashJoin, cur, mk(i), conds)
		covered = covered.Set(i)
	}
	return cur
}
