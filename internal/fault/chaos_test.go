package fault_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/fault"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/obs"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestInjectorDeterministicAndRateAccurate(t *testing.T) {
	in := fault.Injector{Seed: 7, Rate: 0.1}
	hits := 0
	for key := uint64(0); key < 20_000; key++ {
		a := in.Hit("site", key)
		if a != in.Hit("site", key) {
			t.Fatalf("key %d: nondeterministic decision", key)
		}
		if a {
			hits++
		}
	}
	if rate := float64(hits) / 20_000; rate < 0.08 || rate > 0.12 {
		t.Fatalf("hit rate %.3f far from configured 0.1", rate)
	}
	if (fault.Injector{}).Hit("site", 1) {
		t.Fatal("zero-value injector must never fire")
	}
	// Different sites and seeds decide independently.
	same := 0
	for key := uint64(0); key < 20_000; key++ {
		if in.Hit("site", key) && in.Hit("other", key) {
			same++
		}
	}
	if same > 600 { // ~0.01 expected → 200; 600 allows wide slack
		t.Fatalf("sites correlate: %d joint hits", same)
	}
}

// chaosWorkload builds the 200-query parallel workload of the acceptance
// criteria over the tiny database.
func chaosWorkload(tb testing.TB) []*query.Query {
	tb.Helper()
	gen := workload.NewGenerator(testutil.TinyDB(), 11)
	return gen.QueriesRange(200, 2, 4)
}

// TestChaosPoolSurvivesEstimatorAndOperatorFaults is the acceptance
// scenario: with estimator panic/garbage/latency faults injected at ~10% of
// calls and operator errors on a slice of the queries, a 200-query parallel
// workload completes end to end — degraded queries return typed errors, the
// guard's breaker falls back to the histogram baseline, and every
// un-faulted query returns a result byte-identical to the fault-free run.
func TestChaosPoolSurvivesEstimatorAndOperatorFaults(t *testing.T) {
	db := testutil.TinyDB()
	queries := chaosWorkload(t)
	hist := histogram.NewEstimator(db)
	eng := engine.New(db)

	// Fault-free baseline, executed in parallel.
	baseline := make([]int, len(queries))
	errs := workload.RunEach(context.Background(), len(queries), 8, func(i int) error {
		res, err := eng.Execute(queries[i], engine.Config{Estimator: hist, OverlayReopt: true})
		baseline[i] = res.Count
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("baseline query %d failed: %v", i, err)
		}
	}

	// Chaos run: 4% panics + 4% garbage + 2% latency spikes on estimator
	// calls (10% total), operator errors on ~4% of plan nodes.
	fest := &fault.Estimator{
		Inner:        hist,
		Panic:        fault.Injector{Seed: 101, Rate: 0.04},
		Garbage:      fault.Injector{Seed: 102, Rate: 0.04},
		Latency:      fault.Injector{Seed: 103, Rate: 0.02},
		LatencyDelay: 100 * time.Microsecond,
	}
	reg := obs.NewRegistry()
	guard := cardest.NewGuard(fest, cardest.GuardConfig{
		Fallback:      hist,
		Bound:         cardest.CrossProductBound(db),
		LatencyBudget: 50 * time.Millisecond,
		TripAfter:     2,
		Cooldown:      16,
		Registry:      reg,
	})
	ops := &fault.Ops{Err: fault.Injector{Seed: 104, Rate: 0.04}, AtRow: 2}
	cfg := engine.Config{
		Estimator:    guard,
		OverlayReopt: true,
		ExecWrap:     ops.Wrap,
		Limits:       engine.Limits{MaxMatRows: 2_000_000},
	}

	counts := make([]int, len(queries))
	errs = workload.RunEach(context.Background(), len(queries), 8, func(i int) error {
		res, err := eng.Execute(queries[i], cfg)
		counts[i] = res.Count
		return err
	})

	degraded := 0
	for i, err := range errs {
		if err == nil {
			// Estimator faults may change the plan but never the answer.
			if counts[i] != baseline[i] {
				t.Errorf("query %d: chaos count %d != baseline %d", i, counts[i], baseline[i])
			}
			continue
		}
		degraded++
		var re *exec.ResourceError
		if !errors.Is(err, fault.ErrInjected) && !errors.As(err, &re) {
			t.Errorf("query %d: untyped chaos error %v", i, err)
		}
	}

	// The chaos must have been real, and survived.
	if fest.Panics.Load() == 0 || fest.Garbages.Load() == 0 || fest.Latencies.Load() == 0 {
		t.Fatalf("injection never fired: %d panics, %d garbage, %d latency",
			fest.Panics.Load(), fest.Garbages.Load(), fest.Latencies.Load())
	}
	if ops.Errs.Load() == 0 || degraded == 0 {
		t.Fatalf("no operator faults surfaced (injected %d, degraded %d)", ops.Errs.Load(), degraded)
	}
	if degraded == len(queries) {
		t.Fatal("every query degraded; chaos rate far above configuration")
	}
	gs := guard.Stats()
	if gs.Panics == 0 {
		t.Fatal("guard recovered no panics")
	}
	if gs.Trips == 0 || gs.FallbackCalls == 0 {
		t.Fatalf("breaker never tripped onto the histogram fallback: %+v", gs)
	}
	if reg.Counter("cardest.guard.breaker_trips").Value() != gs.Trips {
		t.Fatal("obs counter disagrees with guard stats")
	}
	t.Logf("chaos: %d/%d degraded; guard %+v", degraded, len(queries), gs)
}

// TestChaosScalarBatchParity runs the chaos workload through the scalar
// and the vectorized batch executor with identical operator-fault seeds.
// Fault decisions are a pure hash of (query fingerprint, plan-node subset)
// — independent of the executor — so the two paths must agree query by
// query: the same results where execution succeeds, and the same injected
// error where it does not. This pins the batch adapters (WrapFunc lowering
// and lifting) to the scalar fault semantics.
func TestChaosScalarBatchParity(t *testing.T) {
	db := testutil.TinyDB()
	queries := chaosWorkload(t)
	hist := histogram.NewEstimator(db)
	eng := engine.New(db)
	ops := &fault.Ops{Err: fault.Injector{Seed: 104, Rate: 0.04}, AtRow: 2}
	mk := func(scalar bool) engine.Config {
		return engine.Config{
			Estimator:  hist,
			ExecWrap:   ops.Wrap,
			Limits:     engine.Limits{MaxMatRows: 2_000_000},
			ScalarExec: scalar,
		}
	}

	faulted, completed := 0, 0
	for i, q := range queries {
		sres, serr := eng.Execute(q, mk(true))
		bres, berr := eng.Execute(q, mk(false))
		switch {
		case serr == nil && berr == nil:
			completed++
			if sres.Count != bres.Count {
				t.Errorf("query %d: scalar count %d != batch count %d", i, sres.Count, bres.Count)
			}
		case serr != nil && berr != nil:
			faulted++
			if !errors.Is(serr, fault.ErrInjected) || !errors.Is(berr, fault.ErrInjected) {
				t.Errorf("query %d: untyped chaos errors: scalar %v, batch %v", i, serr, berr)
			}
		default:
			t.Errorf("query %d: fault fired on one path only: scalar %v, batch %v", i, serr, berr)
		}
	}
	if faulted == 0 || completed == 0 {
		t.Fatalf("want a mix of faulted and clean queries, got %d/%d", faulted, completed)
	}
}

// TestChaosParallelExecParity re-runs the scalar/batch parity check with
// morsel-driven intra-query parallelism on: for every worker count the
// engine must fault exactly the same queries with the same typed errors and
// return identical counts, result work, and materialization totals on the
// clean ones. Faulted operators are scalar-wrapped, which forces their
// pipelines back to the serial batch path — parity covers that fallback too.
func TestChaosParallelExecParity(t *testing.T) {
	t.Cleanup(exec.SetMorselSize(64)) // tiny fixtures must split into many morsels
	t.Cleanup(exec.SetExchangeWorkerCap(64))
	db := testutil.TinyDB()
	queries := chaosWorkload(t)[:80]
	hist := histogram.NewEstimator(db)
	eng := engine.New(db)
	ops := &fault.Ops{Err: fault.Injector{Seed: 104, Rate: 0.04}, AtRow: 2}
	mk := func(workers int) engine.Config {
		return engine.Config{
			Estimator:   hist,
			ExecWrap:    ops.Wrap,
			Limits:      engine.Limits{MaxMatRows: 2_000_000},
			ExecWorkers: workers,
		}
	}

	for i, q := range queries {
		sres, serr := eng.Execute(q, mk(0))
		for _, w := range []int{2, 4} {
			pres, perr := eng.Execute(q, mk(w))
			switch {
			case serr == nil && perr == nil:
				if sres.Count != pres.Count {
					t.Errorf("query %d w=%d: serial count %d != parallel count %d", i, w, sres.Count, pres.Count)
				}
				if sres.ExecWork != pres.ExecWork {
					t.Errorf("query %d w=%d: serial work %d != parallel work %d", i, w, sres.ExecWork, pres.ExecWork)
				}
			case serr != nil && perr != nil:
				if !errors.Is(serr, fault.ErrInjected) || !errors.Is(perr, fault.ErrInjected) {
					t.Errorf("query %d w=%d: untyped chaos errors: serial %v, parallel %v", i, w, serr, perr)
				}
			default:
				t.Errorf("query %d w=%d: fault fired on one path only: serial %v, parallel %v", i, w, serr, perr)
			}
		}
	}
}

// TestChaosUnguardedPoolStillSurvives drops the guard entirely: raw
// estimator panics escape into the worker pool, and RunEach must convert
// them into per-query *workload.PanicError without losing the other
// queries.
func TestChaosUnguardedPoolStillSurvives(t *testing.T) {
	db := testutil.TinyDB()
	queries := chaosWorkload(t)
	hist := histogram.NewEstimator(db)
	fest := &fault.Estimator{Inner: hist, Panic: fault.Injector{Seed: 55, Rate: 0.02}}
	eng := engine.New(db)

	errs := workload.RunEach(context.Background(), len(queries), 8, func(i int) error {
		_, err := eng.Execute(queries[i], engine.Config{Estimator: fest})
		return err
	})
	panicked, completed := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		default:
			var pe *workload.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("query %d: %v, want *workload.PanicError", i, err)
			}
			panicked++
		}
	}
	if panicked == 0 || completed == 0 {
		t.Fatalf("want a mix of panics and completions, got %d/%d", panicked, completed)
	}
}

// TestDeadlineCancellation is the acceptance deadline scenario: a query
// carrying a 1ms deadline is cancelled with context.DeadlineExceeded,
// returns within the deadline plus a grace period, and leaks no
// goroutines. Injected operator stalls make the query reliably slower than
// the deadline.
func TestDeadlineCancellation(t *testing.T) {
	db := testutil.TinyDB()
	gen := workload.NewGenerator(db, 19)
	q := gen.Query(4)
	hist := histogram.NewEstimator(db)
	// Every operator stalls 5ms at its first row: execution cannot finish
	// inside 1ms no matter how fast the machine is.
	ops := &fault.Ops{Stall: fault.Injector{Seed: 1, Rate: 1}, StallFor: 5 * time.Millisecond}
	cfg := engine.Config{Estimator: hist, ExecWrap: ops.Wrap}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := engine.New(db).ExecuteContext(ctx, q, cfg)
	elapsed := time.Since(start)

	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Grace period: the deadline (1ms) + one stall (5ms) + a scheduling
	// cushion. A second is far beyond anything cooperative cancellation
	// should need on a loaded CI machine.
	if elapsed > time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	// Goroutine-leak check: the count must return to the pre-query level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestDeadlineSmokeParallel cancels a whole parallel workload by deadline:
// the pool returns promptly with context.DeadlineExceeded and every
// started query reports a typed error.
func TestDeadlineSmokeParallel(t *testing.T) {
	db := testutil.TinyDB()
	queries := chaosWorkload(t)
	hist := histogram.NewEstimator(db)
	ops := &fault.Ops{Stall: fault.Injector{Seed: 2, Rate: 1}, StallFor: 2 * time.Millisecond}
	eng := engine.New(db)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	errs := workload.RunEach(ctx, len(queries), 4, func(i int) error {
		_, err := eng.ExecuteContext(ctx, queries[i], engine.Config{Estimator: hist, ExecWrap: ops.Wrap})
		return err
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pool took %s to honour a 20ms deadline", elapsed)
	}
	cancelled := 0
	for i, err := range errs {
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("query %d: %v, want DeadlineExceeded", i, err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("deadline cancelled nothing; stalls did not slow the workload")
	}
}

// TestMaterializationBudget proves the MaxMatRows budget fails a single
// query with a typed *exec.ResourceError instead of materializing unbounded
// intermediates.
func TestMaterializationBudget(t *testing.T) {
	db := testutil.TinyDB()
	gen := workload.NewGenerator(db, 23)
	hist := histogram.NewEstimator(db)
	eng := engine.New(db)
	var hit bool
	for i := 0; i < 20 && !hit; i++ {
		q := gen.Query(4)
		_, err := eng.Execute(q, engine.Config{Estimator: hist, Limits: engine.Limits{MaxMatRows: 10}})
		if err != nil {
			var re *exec.ResourceError
			if !errors.As(err, &re) {
				t.Fatalf("query %d: %v, want *exec.ResourceError", i, err)
			}
			if re.Resource != "materialized-rows" || re.Limit != 10 || re.Used != 11 {
				t.Fatalf("unexpected resource error %+v", re)
			}
			hit = true
		}
	}
	if !hit {
		t.Fatal("no query tripped a 10-row materialization budget")
	}
}
