// Package fault provides deterministic, seed-driven fault injection for the
// chaos test suite: estimator panics, latency spikes, and garbage
// estimates, plus operator errors and stalls at a chosen output row.
//
// Every decision is a pure hash of (seed, site, key) — never a stateful RNG
// — so whether a given query is faulted does not depend on goroutine
// scheduling or call order. A parallel chaos run therefore faults exactly
// the same (query, subset) pairs as a serial one, and a chaos run can be
// compared query by query against a fault-free run: queries outside the
// injected set must produce byte-identical results.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/plan"
	"github.com/lpce-db/lpce/internal/query"
)

// ErrInjected marks an operator error introduced by the injector; chaos
// tests match it with errors.Is to separate expected degradation from real
// executor bugs.
var ErrInjected = errors.New("fault: injected operator error")

// mix is the splitmix64 finalizer — a strong 64-bit avalanche.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Injector makes deterministic fault decisions: Hit fires for a Rate
// fraction of keys, chosen by hashing (Seed, site, key). The zero value
// never fires.
type Injector struct {
	Seed int64
	Rate float64 // fault probability per distinct key, in [0, 1]
}

// Hit reports whether the fault fires at site for key. Same inputs, same
// answer — regardless of goroutine interleaving.
func (in Injector) Hit(site string, key uint64) bool {
	if in.Rate <= 0 {
		return false
	}
	h := uint64(in.Seed) ^ 14695981039346656037
	for _, b := range []byte(site) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	h = mix(h ^ key)
	return float64(h>>11)/float64(1<<53) < in.Rate
}

// estKey identifies one estimator call site: the query plus the relation
// subset being estimated.
func estKey(q *query.Query, mask query.BitSet) uint64 {
	return mix(q.Fingerprint() ^ uint64(mask)*0x9e3779b97f4a7c15)
}

// Estimator wraps an inner estimator with injected faults, emulating the
// ways a learned model fails in production: it panics, it stalls, or it
// returns garbage. Counters record what actually fired so tests can assert
// the chaos was real.
type Estimator struct {
	Inner cardest.Estimator
	// Panic, Latency, and Garbage decide independently per (query, subset).
	Panic   Injector
	Latency Injector
	Garbage Injector
	// LatencyDelay is how long a latency fault sleeps (default 1ms).
	LatencyDelay time.Duration

	Panics    atomic.Int64
	Latencies atomic.Int64
	Garbages  atomic.Int64
}

// Name implements cardest.Estimator.
func (f *Estimator) Name() string { return f.Inner.Name() }

// EstimateSubset implements cardest.Estimator with fault injection.
func (f *Estimator) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	key := estKey(q, mask)
	if f.Panic.Hit("est-panic", key) {
		f.Panics.Add(1)
		panic(fmt.Sprintf("fault: injected estimator panic (subset %#x)", uint64(mask)))
	}
	if f.Latency.Hit("est-latency", key) {
		f.Latencies.Add(1)
		d := f.LatencyDelay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	if f.Garbage.Hit("est-garbage", key) {
		f.Garbages.Add(1)
		switch mix(key^0xdead) % 4 {
		case 0:
			return math.NaN()
		case 1:
			return math.Inf(1)
		case 2:
			return -42
		default:
			return 1e308
		}
	}
	return f.Inner.EstimateSubset(q, mask)
}

// Ops injects operator-level faults through exec.Ctx.Wrap: a chosen
// operator fails with ErrInjected, or stalls, when it produces its N-th
// output row. Decisions key on (query fingerprint, covered subset), so the
// same plan nodes fault on every run.
type Ops struct {
	Err   Injector
	Stall Injector
	// AtRow is the 1-based output row at which the fault fires (default 1).
	// Row counting is per operator instance; an operator whose child faults
	// first simply propagates the child's error.
	AtRow int64
	// StallFor is how long a stall sleeps (default 1ms). The stall happens
	// once, then the operator continues — it models a hiccuping data source,
	// and gives cancellation tests a guaranteed-slow query.
	StallFor time.Duration

	Errs   atomic.Int64
	Stalls atomic.Int64
}

// Wrap is an exec.WrapFunc. Operators not selected by any injector are
// returned untouched.
func (f *Ops) Wrap(ctx *exec.Ctx, op exec.Operator, n *plan.Node) exec.Operator {
	key := mix(ctx.Q.Fingerprint() ^ uint64(n.Tables)*0x9e3779b97f4a7c15 ^ 0x0b5)
	fail := f.Err.Hit("op-err", key)
	stall := f.Stall.Hit("op-stall", key)
	if !fail && !stall {
		return op
	}
	at := f.AtRow
	if at <= 0 {
		at = 1
	}
	stallFor := f.StallFor
	if stallFor <= 0 {
		stallFor = time.Millisecond
	}
	return &faultyOp{
		inner: op, node: n, owner: f,
		fail: fail, stall: stall, at: at, stallFor: stallFor,
	}
}

// faultyOp is the injected operator shim.
type faultyOp struct {
	inner    exec.Operator
	node     *plan.Node
	owner    *Ops
	fail     bool
	stall    bool
	at       int64
	stallFor time.Duration
	rows     int64
}

func (o *faultyOp) Open(ctx *exec.Ctx) error {
	o.rows = 0
	return o.inner.Open(ctx)
}

func (o *faultyOp) Next(ctx *exec.Ctx) (exec.Tuple, bool, error) {
	t, ok, err := o.inner.Next(ctx)
	if err != nil || !ok {
		return t, ok, err
	}
	o.rows++
	if o.rows == o.at {
		if o.stall {
			o.owner.Stalls.Add(1)
			time.Sleep(o.stallFor)
			// A slow source must still observe cancellation: a deadline that
			// expired during the stall surfaces here instead of waiting for
			// the next work-charge poll.
			if ctx.Context != nil {
				if err := ctx.Context.Err(); err != nil {
					return nil, false, err
				}
			}
		}
		if o.fail {
			o.owner.Errs.Add(1)
			return nil, false, fmt.Errorf("%w (%v over %#x at row %d)",
				ErrInjected, o.node.Op, uint64(o.node.Tables), o.rows)
		}
	}
	return t, ok, nil
}

func (o *faultyOp) Close() { o.inner.Close() }

// Spike is a deterministic load-spike schedule for overload tests: request
// indices are grouped into windows of Period; the first Burst indices of
// each window arrive back-to-back (no pacing) while the rest are paced Gap
// apart. Clients sleep Delay(i) before sending request i, so the arrival
// process alternates between sustained trickle and saturating spike — the
// traffic shape that exercises rate limiters, admission queues, and the
// health state machine. Pure function of the index: the same i is always in
// (or out of) a spike, regardless of scheduling.
type Spike struct {
	Period int           // window length in requests (default 32)
	Burst  int           // leading back-to-back requests per window (default Period/4)
	Gap    time.Duration // inter-arrival pacing outside bursts (default 500µs)
}

func (s Spike) normalized() Spike {
	if s.Period <= 0 {
		s.Period = 32
	}
	if s.Burst <= 0 {
		s.Burst = s.Period / 4
	}
	if s.Burst > s.Period {
		s.Burst = s.Period
	}
	if s.Gap <= 0 {
		s.Gap = 500 * time.Microsecond
	}
	return s
}

// InBurst reports whether request i falls inside a spike window.
func (s Spike) InBurst(i int) bool {
	s = s.normalized()
	return i%s.Period < s.Burst
}

// Delay returns the pre-send pacing delay for request i: zero inside a
// spike, Gap outside.
func (s Spike) Delay(i int) time.Duration {
	s = s.normalized()
	if s.InBurst(i) {
		return 0
	}
	return s.Gap
}
