// Package datadriven implements behavioural substitutes for the paper's
// data-driven and hybrid baselines (DeepDB, NeuroCard, FLAT, UAE). Their
// open-source releases are deep generative models over the relation data;
// what the paper uses them for is a single trade-off: estimators that
// access the data are substantially more accurate on correlated joins and
// substantially slower per inference than query-driven models. The
// substitutes reproduce that trade-off by the same mechanism — they access
// the stored data at estimation time:
//
//   - JoinSample (NeuroCard-like) estimates by index-based random walks
//     over the live join graph (wander join), the same full-join
//     distribution NeuroCard's autoregressive model learns;
//   - TableHist (DeepDB-like) combines per-table cluster-mixture
//     selectivities — the sum-product-network idea of modelling a table as
//     a mixture of row clusters — with sampled join fan-outs;
//   - FactorHist (FLAT-like) stratifies the walk starts by cluster for
//     lower variance at fewer walks, mirroring FLAT's
//     factorize-split-sum-product speedup over DeepDB;
//   - CalibratedSample (UAE-like) adds supervised calibration from
//     training queries on top of the walks, mirroring UAE's hybrid
//     data+query training.
//
// Per-estimate cost is real computation (index probes, histogram mixes),
// not a simulated sleep, so end-to-end timing experiments measure honest
// work.
package datadriven

import (
	"math/rand"
	"sync"

	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// walkStep is one relation attachment in the walk order of a subset.
type walkStep struct {
	tableIdx int          // local table index being attached
	conds    []query.Join // join conditions linking it to the prefix
}

// walkPlan computes the canonical attachment order for a subset: lowest
// local index first, then lowest connected index, matching
// exec.CanonicalPlan so all estimators featurize subsets identically.
func walkPlan(q *query.Query, mask query.BitSet) []walkStep {
	idxs := mask.Indices()
	if len(idxs) == 0 {
		return nil
	}
	steps := []walkStep{{tableIdx: idxs[0]}}
	covered := query.NewBitSet().Set(idxs[0])
	remaining := append([]int(nil), idxs[1:]...)
	for len(remaining) > 0 {
		pick := -1
		for pi, i := range remaining {
			if len(q.JoinsBetween(covered, query.NewBitSet().Set(i))) > 0 {
				pick = pi
				break
			}
		}
		if pick == -1 {
			pick = 0
		}
		i := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		steps = append(steps, walkStep{
			tableIdx: i,
			conds:    q.JoinsBetween(covered, query.NewBitSet().Set(i)),
		})
		covered = covered.Set(i)
	}
	return steps
}

// sampler holds the shared wander-join machinery. It is safe for
// concurrent use: the filtered-row cache is guarded by a mutex, and walk
// randomness comes from a per-call generator derived deterministically from
// (sampler seed, query fingerprint, subset mask) — so an estimate never
// depends on which other estimates ran before it, and parallel workloads
// reproduce serial ones bit for bit.
type sampler struct {
	db   *storage.Database
	seed int64

	// mu guards startRows, the per-query cache of filtered start-table row
	// lists.
	mu        sync.Mutex
	startRows map[*query.Query]map[int][]int32
}

// startRowsCacheCap bounds the number of queries with cached filtered-row
// lists; beyond it the whole cache is dropped. Row lists are bounded by
// table sizes, so this caps sampler memory at a small multiple of the
// database size even under endless workloads.
const startRowsCacheCap = 128

func newSampler(db *storage.Database, seed int64) *sampler {
	return &sampler{db: db, seed: seed, startRows: make(map[*query.Query]map[int][]int32)}
}

// rngFor derives the walk generator for one estimate call. Mixing the query
// fingerprint and mask into the seed keeps estimates independent of call
// order while still varying the walks across subsets.
func (s *sampler) rngFor(q *query.Query, mask query.BitSet) *rand.Rand {
	h := uint64(s.seed)*0x9e3779b97f4a7c15 + q.Fingerprint()
	h ^= uint64(mask) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	h *= 0x94d049bb133111eb
	h ^= h >> 32
	return rand.New(rand.NewSource(int64(h)))
}

// filteredRows returns (and caches per query) the row IDs of table i that
// satisfy the query's predicates on it.
func (s *sampler) filteredRows(q *query.Query, i int) []int32 {
	s.mu.Lock()
	if perQ, ok := s.startRows[q]; ok {
		if rows, ok := perQ[i]; ok {
			s.mu.Unlock()
			return rows
		}
	}
	s.mu.Unlock()

	// compute outside the lock (pure function of immutable query + table
	// data); concurrent duplicates produce identical slices
	meta := q.Tables[i]
	tab := s.db.Table(meta)
	preds := q.PredsOn(meta)
	rows := make([]int32, 0, tab.NumRows()/4)
	for r := 0; r < tab.NumRows(); r++ {
		ok := true
		for _, p := range preds {
			if !p.Eval(tab.Col(p.Col.Pos)[r]) {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, int32(r))
		}
	}

	s.mu.Lock()
	if len(s.startRows) >= startRowsCacheCap {
		s.startRows = make(map[*query.Query]map[int][]int32)
	}
	perQ := s.startRows[q]
	if perQ == nil {
		perQ = make(map[int][]int32)
		s.startRows[q] = perQ
	}
	perQ[i] = rows
	s.mu.Unlock()
	return rows
}

// wander runs numWalks random walks over the subset's join graph and
// returns the unbiased cardinality estimate (Li et al.'s wander join with
// per-step conditioning): each walk starts from a uniformly random filtered
// row of the first table and extends one relation at a time through
// hash-index probes. At every step the probe's candidate rows are filtered
// by the new table's predicates and the remaining join conditions *before*
// the walk weight is multiplied by the candidate count — the estimator
// stays unbiased but walks only die on genuine dead ends, which keeps
// variance manageable on deep joins where naive rejection sampling loses
// nearly every walk.
//
// startAt optionally overrides the start-row choice (used by the stratified
// variant); pass nil for uniform starts. The rng handed to startAt is the
// walk generator, so stratified phases stay deterministic per call.
func (s *sampler) wander(q *query.Query, mask query.BitSet, numWalks int, startAt func(rng *rand.Rand, rows []int32, walk int) int32) float64 {
	steps := walkPlan(q, mask)
	start := s.filteredRows(q, steps[0].tableIdx)
	if len(start) == 0 {
		return 0
	}
	if len(steps) == 1 {
		return float64(len(start))
	}

	rng := s.rngFor(q, mask)
	var total float64
	assignment := make(map[int]int32, len(steps)) // local table idx -> row
	var survivors []int32
	for walk := 0; walk < numWalks; walk++ {
		var startRow int32
		if startAt != nil {
			startRow = startAt(rng, start, walk)
		} else {
			startRow = start[rng.Intn(len(start))]
		}
		w := float64(len(start))
		assignment[steps[0].tableIdx] = startRow
		alive := true
		for _, st := range steps[1:] {
			matches, ok := s.stepMatches(q, st, assignment)
			if !ok || len(matches) == 0 {
				alive = false
				break
			}
			// condition on the predicates and extra join conditions before
			// weighting
			survivors = survivors[:0]
			for _, row := range matches {
				if s.rowPasses(q, st.tableIdx, row) && s.extraCondsHold(q, st, assignment, row) {
					survivors = append(survivors, row)
				}
			}
			if len(survivors) == 0 {
				alive = false
				break
			}
			w *= float64(len(survivors))
			assignment[st.tableIdx] = survivors[rng.Intn(len(survivors))]
		}
		if alive {
			total += w
		}
	}
	return total / float64(numWalks)
}

// fallbackEstimate is used when every walk dies (rare after per-step
// conditioning, but possible on highly selective deep joins): a crude
// independence estimate from the exact filtered start count and per-edge
// NDVs. Far better than returning 1, which would turn a large true
// cardinality into a catastrophic q-error.
func (s *sampler) fallbackEstimate(q *query.Query, mask query.BitSet) float64 {
	steps := walkPlan(q, mask)
	est := float64(len(s.filteredRows(q, steps[0].tableIdx)))
	for _, st := range steps[1:] {
		rows := float64(len(s.filteredRows(q, st.tableIdx)))
		ndv := 1
		for _, c := range st.conds {
			if c.Left.NDV > ndv {
				ndv = c.Left.NDV
			}
			if c.Right.NDV > ndv {
				ndv = c.Right.NDV
			}
		}
		est = est * rows / float64(ndv)
	}
	if est < 1 {
		est = 1
	}
	return est
}

// wanderWithFallback runs wander and falls back to the independence
// estimate when no walk survives.
func (s *sampler) wanderWithFallback(q *query.Query, mask query.BitSet, numWalks int, startAt func(rng *rand.Rand, rows []int32, walk int) int32) float64 {
	v := s.wander(q, mask, numWalks, startAt)
	if v >= 1 {
		return v
	}
	return s.fallbackEstimate(q, mask)
}

// stepMatches probes the new table's hash index using the first join
// condition.
func (s *sampler) stepMatches(q *query.Query, st walkStep, assignment map[int]int32) ([]int32, bool) {
	c := st.conds[0]
	newCol, prevCol := c.Left, c.Right
	if q.TableIndex(c.Left.Table) != st.tableIdx {
		newCol, prevCol = c.Right, c.Left
	}
	prevIdx := q.TableIndex(prevCol.Table)
	prevRow, ok := assignment[prevIdx]
	if !ok {
		return nil, false
	}
	val := s.db.Table(prevCol.Table).Col(prevCol.Pos)[prevRow]
	ix := s.db.Table(newCol.Table).HashIndex(newCol.Pos)
	return ix.Lookup(val), true
}

// rowPasses checks the query predicates on the sampled row.
func (s *sampler) rowPasses(q *query.Query, tableIdx int, row int32) bool {
	meta := q.Tables[tableIdx]
	tab := s.db.Table(meta)
	for _, p := range q.PredsOn(meta) {
		if !p.Eval(tab.Col(p.Col.Pos)[row]) {
			return false
		}
	}
	return true
}

// extraCondsHold verifies the remaining join conditions (beyond the probe
// condition) between the sampled row and the walk's current assignment.
func (s *sampler) extraCondsHold(q *query.Query, st walkStep, assignment map[int]int32, row int32) bool {
	for _, c := range st.conds[1:] {
		newCol, prevCol := c.Left, c.Right
		if q.TableIndex(c.Left.Table) != st.tableIdx {
			newCol, prevCol = c.Right, c.Left
		}
		prevIdx := q.TableIndex(prevCol.Table)
		prevRow, ok := assignment[prevIdx]
		if !ok {
			continue
		}
		lv := s.db.Table(newCol.Table).Col(newCol.Pos)[row]
		rv := s.db.Table(prevCol.Table).Col(prevCol.Pos)[prevRow]
		if lv != rv {
			return false
		}
	}
	return true
}
