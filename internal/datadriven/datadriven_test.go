package datadriven

import (
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/exec"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/testutil"
	"github.com/lpce-db/lpce/internal/workload"
)

func TestWalkPlanCoversSubset(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 101)
	for i := 0; i < 20; i++ {
		q := g.Query(3 + i%3)
		mask := q.AllTablesMask()
		steps := walkPlan(q, mask)
		if len(steps) != mask.Count() {
			t.Fatalf("steps = %d, tables = %d", len(steps), mask.Count())
		}
		covered := query.NewBitSet()
		for si, st := range steps {
			if covered.Has(st.tableIdx) {
				t.Fatal("table attached twice")
			}
			if si > 0 && len(st.conds) == 0 {
				t.Fatalf("step %d has no join conditions (cross product)", si)
			}
			covered = covered.Set(st.tableIdx)
		}
		if covered != mask {
			t.Fatal("walk does not cover the subset")
		}
	}
}

func TestWanderJoinUnbiasedOnSmallQueries(t *testing.T) {
	// With many walks the wander-join estimate should land within a small
	// factor of the truth for 1-2 join queries.
	db := testutil.TinyDB()
	oracle := exec.NewTrueCardOracle(db)
	g := workload.NewGenerator(db, 102)
	s := newSampler(db, 1)
	okCount, total := 0, 0
	for i := 0; i < 15; i++ {
		q := g.Query(1 + i%2)
		mask := q.AllTablesMask()
		truth := oracle.EstimateSubset(q, mask)
		if truth < 20 {
			continue // tiny results are high-variance for any sampler
		}
		est := s.wander(q, mask, 1500, nil)
		total++
		if est > truth/3 && est < truth*3 {
			okCount++
		}
	}
	if total == 0 {
		t.Skip("no queries with large enough results")
	}
	if okCount*3 < total*2 {
		t.Fatalf("wander join within 3x for only %d/%d queries", okCount, total)
	}
}

func TestSingleTableWanderIsExact(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 103)
	s := newSampler(db, 2)
	oracle := exec.NewTrueCardOracle(db)
	for i := 0; i < 10; i++ {
		q := g.Query(1)
		for ti := range q.Tables {
			mask := query.NewBitSet().Set(ti)
			est := s.wander(q, mask, 10, nil)
			truth := oracle.EstimateSubset(q, mask)
			if est != truth {
				t.Fatalf("single-table estimate %v != truth %v", est, truth)
			}
		}
	}
}

func TestFilteredRowsCachePerQuery(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 104)
	s := newSampler(db, 3)
	q1 := g.Query(2)
	q2 := g.Query(2)
	r1 := s.filteredRows(q1, 0)
	r1again := s.filteredRows(q1, 0)
	if len(r1) > 0 && &r1[0] != &r1again[0] {
		t.Fatal("cache miss for same query")
	}
	// a second query gets its own entry without evicting the first
	s.filteredRows(q2, 0)
	r1third := s.filteredRows(q1, 0)
	if len(r1) > 0 && &r1[0] != &r1third[0] {
		t.Fatal("first query evicted by second")
	}
	if len(s.startRows) != 2 {
		t.Fatalf("cached queries = %d, want 2", len(s.startRows))
	}
}

func TestWanderDeterministicPerSubset(t *testing.T) {
	// Estimates must not depend on call order: interleaving other estimates
	// between two calls for the same (query, mask) must not change the
	// result. This is the property the parallel workload runner relies on.
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 105)
	s := newSampler(db, 4)
	q1, q2 := g.Query(2), g.Query(3)
	m1, m2 := q1.AllTablesMask(), q2.AllTablesMask()
	first := s.wander(q1, m1, 200, nil)
	s.wander(q2, m2, 200, nil) // unrelated interleaved work
	s.wander(q2, m2, 50, nil)
	if again := s.wander(q1, m1, 200, nil); again != first {
		t.Fatalf("estimate changed with call order: %v then %v", first, again)
	}
	// a fresh sampler with the same seed reproduces the value exactly
	if fresh := newSampler(db, 4).wander(q1, m1, 200, nil); fresh != first {
		t.Fatalf("fresh sampler estimate %v != %v", fresh, first)
	}
}

func allEstimators(db interface{}) []interface {
	Name() string
	EstimateSubset(*query.Query, query.BitSet) float64
} {
	d := testutil.TinyDB()
	return []interface {
		Name() string
		EstimateSubset(*query.Query, query.BitSet) float64
	}{
		NewJoinSample(d, 100, 1),
		NewTableHist(d, 2),
		NewFactorHist(d, 60, 3),
		NewCalibratedSample(d, 120, 4),
	}
}

func TestAllEstimatorsProduceValidEstimates(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 105)
	for _, est := range allEstimators(db) {
		for i := 0; i < 4; i++ {
			q := g.Query(2 + i%3)
			for mask := query.BitSet(1); mask <= q.AllTablesMask(); mask++ {
				if !q.Connected(mask) {
					continue
				}
				v := est.EstimateSubset(q, mask)
				if v < 1 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: invalid estimate %v for mask %b", est.Name(), v, uint32(mask))
				}
			}
		}
	}
}

func TestEstimatorNames(t *testing.T) {
	want := map[string]bool{"neurocard-sim": true, "deepdb-sim": true, "flat-sim": true, "uae-sim": true}
	for _, est := range allEstimators(nil) {
		if !want[est.Name()] {
			t.Fatalf("unexpected name %s", est.Name())
		}
		delete(want, est.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing estimators: %v", want)
	}
}

func TestCalibrationImprovesDeepJoins(t *testing.T) {
	db := testutil.SmallDB()
	oracle := exec.NewTrueCardOracle(db)
	g := workload.NewGenerator(db, 106)

	calibQs := g.Queries(10, 4)
	var examples []CalibrationExample
	for _, q := range calibQs {
		examples = append(examples, CalibrationExample{
			Query: q, Mask: q.AllTablesMask(), TrueCard: oracle.EstimateSubset(q, q.AllTablesMask()),
		})
	}
	cal := NewCalibratedSample(db, 200, 5)
	cal.Calibrate(examples)
	if len(cal.correction) == 0 {
		t.Fatal("calibration learned nothing")
	}
	// sanity: calibrated estimates remain valid
	q := g.Query(4)
	v := cal.EstimateSubset(q, q.AllTablesMask())
	if v < 1 || math.IsNaN(v) {
		t.Fatalf("calibrated estimate invalid: %v", v)
	}
}

func TestDataDrivenBeatsHistogramOnDeepJoins(t *testing.T) {
	// The load-bearing property from the paper's Table 1: data-access
	// estimators are more accurate than the independence-assumption
	// histogram on correlated multi-join queries.
	db := testutil.SmallDB()
	oracle := exec.NewTrueCardOracle(db)
	hist := histogram.NewEstimator(db)
	js := NewJoinSample(db, 400, 6)
	g := workload.NewGenerator(db, 107)

	var histLogQ, jsLogQ float64
	n := 0
	for i := 0; i < 12; i++ {
		q := g.Query(4)
		mask := q.AllTablesMask()
		truth := oracle.EstimateSubset(q, mask)
		histLogQ += math.Log(qerr(truth, hist.EstimateSubset(q, mask)))
		jsLogQ += math.Log(qerr(truth, js.EstimateSubset(q, mask)))
		n++
	}
	if jsLogQ >= histLogQ {
		t.Fatalf("join sampling (mean log q %.2f) should beat histograms (%.2f) on 4-join queries",
			jsLogQ/float64(n), histLogQ/float64(n))
	}
}

func qerr(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	if a > b {
		return a / b
	}
	return b / a
}

func TestClusterStats(t *testing.T) {
	db := testutil.TinyDB()
	tab := db.TableByName("title")
	cs := buildClusters(tab)
	totalRows := 0
	for _, rows := range cs.rows {
		totalRows += len(rows)
	}
	if totalRows != tab.NumRows() {
		t.Fatalf("clusters cover %d rows, table has %d", totalRows, tab.NumRows())
	}
	var fracSum float64
	for _, f := range cs.rowFracs {
		fracSum += f
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Fatalf("cluster fractions sum to %v", fracSum)
	}
	// no-predicate selectivity is exactly 1
	if got := cs.selectivity(nil, 50); got != 1 {
		t.Fatalf("empty-pred selectivity = %v", got)
	}
	// all-pass predicate: id >= 0
	id := tab.Meta.Column("id")
	sel := cs.selectivity([]query.Predicate{{Col: id, Op: query.OpGE, Operand: 0}}, 50)
	if math.Abs(sel-1) > 1e-9 {
		t.Fatalf("id >= 0 should have selectivity 1, got %v", sel)
	}
	// none-pass predicate
	sel = cs.selectivity([]query.Predicate{{Col: id, Op: query.OpLT, Operand: 0}}, 50)
	if sel != 0 {
		t.Fatalf("id < 0 should have selectivity 0, got %v", sel)
	}
}

func TestFallbackEstimateUsedWhenWalksDie(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 108)
	s := newSampler(db, 7)
	for i := 0; i < 10; i++ {
		q := g.Query(3)
		mask := q.AllTablesMask()
		// zero walks always "die", so wanderWithFallback must return the
		// independence fallback, which is >= 1 and finite
		v := s.wanderWithFallback(q, mask, 0, nil)
		if v < 1 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("fallback estimate %v invalid", v)
		}
		// and it must equal the explicit fallback
		if want := s.fallbackEstimate(q, mask); v != want {
			t.Fatalf("fallback mismatch: %v vs %v", v, want)
		}
	}
}

func TestFallbackSingleTableExact(t *testing.T) {
	db := testutil.TinyDB()
	g := workload.NewGenerator(db, 109)
	s := newSampler(db, 8)
	oracle := exec.NewTrueCardOracle(db)
	for i := 0; i < 5; i++ {
		q := g.Query(1)
		for ti := range q.Tables {
			mask := query.NewBitSet().Set(ti)
			if got, want := s.fallbackEstimate(q, mask), oracle.EstimateSubset(q, mask); want >= 1 && got != want {
				t.Fatalf("single-table fallback %v != exact %v", got, want)
			}
		}
	}
}
