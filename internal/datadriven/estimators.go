package datadriven

import (
	"math"
	"math/rand"
	"sort"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/storage"
)

// JoinSample is the NeuroCard-like estimator: pure wander-join sampling
// over the live join graph.
type JoinSample struct {
	s        *sampler
	numWalks int
}

// NewJoinSample builds the estimator. numWalks trades accuracy for
// inference time (default 500).
func NewJoinSample(db *storage.Database, numWalks int, seed int64) *JoinSample {
	if numWalks <= 0 {
		numWalks = 500
	}
	return &JoinSample{s: newSampler(db, seed), numWalks: numWalks}
}

// Name implements cardest.Estimator.
func (e *JoinSample) Name() string { return "neurocard-sim" }

// EstimateSubset implements cardest.Estimator.
func (e *JoinSample) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	return e.s.wanderWithFallback(q, mask, e.numWalks, nil)
}

// clusterStats partitions a table's rows into clusters keyed by the
// equi-depth bucket of an anchor column and records per-cluster,
// per-column value histograms. It is the sum-product-network surrogate:
// inside a cluster, columns are treated independently, but the mixture over
// clusters captures the table's dominant correlations.
type clusterStats struct {
	table    *storage.Table
	anchor   int       // anchor column position
	bounds   []int64   // cluster boundaries over the anchor column
	rows     [][]int32 // row IDs per cluster
	rowFracs []float64
}

const numClusters = 16

func buildClusters(tab *storage.Table) *clusterStats {
	cs := &clusterStats{table: tab}
	n := tab.NumRows()
	if n == 0 {
		return cs
	}
	// anchor: the first column (for facts this is the movie FK, which is
	// popularity-ordered and hence correlates with fan-out and year)
	cs.anchor = 0
	vals := append([]int64(nil), tab.Col(cs.anchor)...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	k := numClusters
	if k > n {
		k = n
	}
	for c := 1; c < k; c++ {
		cs.bounds = append(cs.bounds, vals[c*(n-1)/k])
	}
	cs.rows = make([][]int32, k)
	for r := 0; r < n; r++ {
		c := cs.clusterOf(tab.Col(cs.anchor)[r])
		cs.rows[c] = append(cs.rows[c], int32(r))
	}
	cs.rowFracs = make([]float64, k)
	for c := range cs.rows {
		cs.rowFracs[c] = float64(len(cs.rows[c])) / float64(n)
	}
	return cs
}

func (cs *clusterStats) clusterOf(v int64) int {
	return sort.Search(len(cs.bounds), func(i int) bool { return cs.bounds[i] >= v })
}

// selectivity estimates the fraction of rows satisfying the predicates via
// the cluster mixture, sampling at most sampleCap rows per cluster.
func (cs *clusterStats) selectivity(preds []query.Predicate, sampleCap int) float64 {
	if len(cs.rows) == 0 || len(preds) == 0 {
		return 1
	}
	var sel float64
	for c, rows := range cs.rows {
		if len(rows) == 0 {
			continue
		}
		step := 1
		if len(rows) > sampleCap {
			step = len(rows) / sampleCap
		}
		matched, seen := 0, 0
		for i := 0; i < len(rows); i += step {
			seen++
			ok := true
			for _, p := range preds {
				if !p.Eval(cs.table.Col(p.Col.Pos)[rows[i]]) {
					ok = false
					break
				}
			}
			if ok {
				matched++
			}
		}
		sel += cs.rowFracs[c] * float64(matched) / float64(seen)
	}
	return sel
}

// TableHist is the DeepDB-like estimator: per-table cluster mixtures for
// selectivities plus sampled join fan-outs. It scans cluster samples for
// every estimate, paying DeepDB's "evaluate the SPN" cost.
type TableHist struct {
	s        *sampler
	clusters map[int]*clusterStats // keyed by catalog table ID
	// fanoutSamples bounds the left-side value sample per join step.
	fanoutSamples int
	sampleCap     int
}

// NewTableHist builds the estimator, materializing per-table clusters.
func NewTableHist(db *storage.Database, seed int64) *TableHist {
	e := &TableHist{
		s:             newSampler(db, seed),
		clusters:      make(map[int]*clusterStats),
		fanoutSamples: 200,
		sampleCap:     96,
	}
	for _, tab := range db.Tables {
		if tab != nil {
			e.clusters[tab.Meta.ID] = buildClusters(tab)
		}
	}
	return e
}

// Name implements cardest.Estimator.
func (e *TableHist) Name() string { return "deepdb-sim" }

// EstimateSubset walks the subset's attachment order: the start table's
// cardinality comes from the cluster mixture; each join step multiplies the
// sampled expected fan-out of the probe index (conditioned on the rows that
// survived so far via a bounded wander sample) and the new table's
// mixture selectivity.
func (e *TableHist) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	steps := walkPlan(q, mask)
	first := q.Tables[steps[0].tableIdx]
	card := float64(e.s.db.Table(first).NumRows()) *
		e.clusters[first.ID].selectivity(q.PredsOn(first), e.sampleCap)
	if len(steps) == 1 {
		if card < 1 {
			card = 1
		}
		return card
	}
	// estimate the join chain with a short wander sample for fan-outs
	est := e.s.wander(q, mask, e.fanoutSamples, nil)
	// blend: the wander estimate carries the correlation signal; the
	// mixture start-card stabilizes empty-walk cases
	if est < 1 {
		// all walks died: fall back to mixture selectivities under
		// independence (better than returning 1)
		est = card
		for _, st := range steps[1:] {
			t := q.Tables[st.tableIdx]
			rows := float64(e.s.db.Table(t).NumRows())
			sel := e.clusters[t.ID].selectivity(q.PredsOn(t), e.sampleCap)
			ndv := 1
			for _, c := range st.conds {
				if c.Left.NDV > ndv {
					ndv = c.Left.NDV
				}
				if c.Right.NDV > ndv {
					ndv = c.Right.NDV
				}
			}
			est = est * rows * sel / float64(ndv)
		}
	}
	if est < 1 {
		est = 1
	}
	return est
}

// FactorHist is the FLAT-like estimator: stratified wander join. Walk
// starts are spread evenly over the filtered start rows (systematic
// sampling), which cuts variance enough to use ~3x fewer walks than
// JoinSample — mirroring FLAT's speedup over DeepDB/NeuroCard at equal or
// better accuracy.
type FactorHist struct {
	s        *sampler
	numWalks int
}

// NewFactorHist builds the estimator (default 160 walks).
func NewFactorHist(db *storage.Database, numWalks int, seed int64) *FactorHist {
	if numWalks <= 0 {
		numWalks = 160
	}
	return &FactorHist{s: newSampler(db, seed), numWalks: numWalks}
}

// Name implements cardest.Estimator.
func (e *FactorHist) Name() string { return "flat-sim" }

// EstimateSubset implements cardest.Estimator.
func (e *FactorHist) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	stratified := func(rng *rand.Rand, rows []int32, walk int) int32 {
		// systematic sampling with a random phase per call position
		pos := (walk*len(rows))/e.numWalks + rng.Intn(maxI(len(rows)/e.numWalks, 1))
		if pos >= len(rows) {
			pos = len(rows) - 1
		}
		return rows[pos]
	}
	return e.s.wanderWithFallback(q, mask, e.numWalks, stratified)
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CalibratedSample is the UAE-like hybrid estimator: wander-join sampling
// calibrated with supervised feedback from training queries. Calibration
// learns, per join count, the median log-ratio between true and sampled
// cardinalities and applies it as a multiplicative correction — the
// "learning from queries" half of UAE.
type CalibratedSample struct {
	s        *sampler
	numWalks int
	// correction[k] is the log-space correction for subsets with k joins.
	correction map[int]float64
}

// NewCalibratedSample builds the estimator with default 700 walks.
func NewCalibratedSample(db *storage.Database, numWalks int, seed int64) *CalibratedSample {
	if numWalks <= 0 {
		numWalks = 700
	}
	return &CalibratedSample{
		s:          newSampler(db, seed),
		numWalks:   numWalks,
		correction: make(map[int]float64),
	}
}

// Calibrate fits the per-join-count corrections from (query, subset, true
// cardinality) triples, e.g. harvested from the training plans. Calibrate
// is a setup-time operation: it must not run concurrently with
// EstimateSubset calls (the correction map is read without locking on the
// estimate hot path).
func (e *CalibratedSample) Calibrate(examples []CalibrationExample) {
	byJoins := make(map[int][]float64)
	for _, ex := range examples {
		est := e.s.wander(ex.Query, ex.Mask, e.numWalks, nil)
		if est < 1 {
			est = 1
		}
		trueCard := ex.TrueCard
		if trueCard < 1 {
			trueCard = 1
		}
		k := len(ex.Query.JoinsWithin(ex.Mask))
		byJoins[k] = append(byJoins[k], math.Log(trueCard/est))
	}
	for k, ratios := range byJoins {
		sort.Float64s(ratios)
		e.correction[k] = ratios[len(ratios)/2] // median log-ratio
	}
}

// CalibrationExample is one supervised feedback point for UAE-style
// calibration.
type CalibrationExample struct {
	Query    *query.Query
	Mask     query.BitSet
	TrueCard float64
}

// Name implements cardest.Estimator.
func (e *CalibratedSample) Name() string { return "uae-sim" }

// EstimateSubset implements cardest.Estimator.
func (e *CalibratedSample) EstimateSubset(q *query.Query, mask query.BitSet) float64 {
	v := e.s.wanderWithFallback(q, mask, e.numWalks, nil)
	k := len(q.JoinsWithin(mask))
	if corr, ok := e.correction[k]; ok {
		v *= math.Exp(corr)
	}
	if v < 1 {
		v = 1
	}
	return v
}

// Compile-time interface checks.
var (
	_ cardest.Estimator = (*JoinSample)(nil)
	_ cardest.Estimator = (*TableHist)(nil)
	_ cardest.Estimator = (*FactorHist)(nil)
	_ cardest.Estimator = (*CalibratedSample)(nil)
)
