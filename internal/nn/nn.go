// Package nn provides the neural-network building blocks used by every
// learned estimator in the repository: parameter registries, linear layers
// and MLPs on the autodiff tape, the Adam optimizer, gradient clipping, and
// gob-based model persistence.
package nn

import (
	"fmt"
	"math"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/tensor"
)

// Param is one trainable tensor (matrix or vector) with its gradient and
// Adam moment estimates. Vector parameters use Cols == 1.
type Param struct {
	Name       string
	Rows, Cols int
	Val        tensor.Vec
	Grad       tensor.Vec
	m, v       tensor.Vec // Adam first/second moment estimates
}

// Mat views the parameter as a matrix aliasing its storage.
func (p *Param) Mat() *tensor.Mat {
	return &tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.Val}
}

// GradMat views the gradient as a matrix aliasing its storage.
func (p *Param) GradMat() *tensor.Mat {
	return &tensor.Mat{Rows: p.Rows, Cols: p.Cols, Data: p.Grad}
}

// Size returns the number of scalar weights in the parameter.
func (p *Param) Size() int { return len(p.Val) }

// Params is a registry of the parameters of one model. Layers register their
// weights here so the optimizer and the persistence code can reach them.
type Params struct {
	list  []*Param
	names map[string]*Param
}

// NewParams returns an empty registry.
func NewParams() *Params { return &Params{names: make(map[string]*Param)} }

// NewMatParam registers a rows x cols matrix parameter with Xavier init.
func (ps *Params) NewMatParam(name string, rows, cols int, rng *tensor.RNG) *Param {
	p := ps.register(name, rows, cols)
	rng.Xavier(p.Mat())
	return p
}

// NewVecParam registers a zero-initialized vector parameter (typically a
// bias).
func (ps *Params) NewVecParam(name string, n int) *Param {
	return ps.register(name, n, 1)
}

func (ps *Params) register(name string, rows, cols int) *Param {
	if _, dup := ps.names[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	n := rows * cols
	p := &Param{
		Name: name, Rows: rows, Cols: cols,
		Val: tensor.NewVec(n), Grad: tensor.NewVec(n),
		m: tensor.NewVec(n), v: tensor.NewVec(n),
	}
	ps.list = append(ps.list, p)
	ps.names[name] = p
	return p
}

// All returns the registered parameters in registration order.
func (ps *Params) All() []*Param { return ps.list }

// ShareWeights returns a registry whose parameters alias this registry's
// values but own private, zeroed gradient buffers. Data-parallel training
// workers run forward/backward on such replicas: weight reads see the
// master's current values while gradient writes stay private to the
// worker. Replicas carry no optimizer state and must not be passed to
// Adam.Step; only the master registry is stepped.
func (ps *Params) ShareWeights() *Params {
	out := NewParams()
	for _, p := range ps.list {
		np := &Param{
			Name: p.Name, Rows: p.Rows, Cols: p.Cols,
			Val: p.Val, Grad: tensor.NewVec(len(p.Grad)),
		}
		out.list = append(out.list, np)
		out.names[np.Name] = np
	}
	return out
}

// CopyGradTo copies every gradient into buf contiguously in registration
// order and returns the number of scalars written. buf must hold at least
// NumWeights() elements from off.
func (ps *Params) CopyGradTo(buf []float64, off int) int {
	for _, p := range ps.list {
		off += copy(buf[off:], p.Grad)
	}
	return off
}

// AddGradFrom accumulates a flat gradient previously produced by
// CopyGradTo into the registry's gradients and returns the new offset.
func (ps *Params) AddGradFrom(buf []float64, off int) int {
	for _, p := range ps.list {
		p.Grad.Add(buf[off : off+len(p.Grad)])
		off += len(p.Grad)
	}
	return off
}

// Get returns the parameter with the given name, or nil.
func (ps *Params) Get(name string) *Param { return ps.names[name] }

// ZeroGrad clears every gradient, called once per optimizer step.
func (ps *Params) ZeroGrad() {
	for _, p := range ps.list {
		p.Grad.Zero()
	}
}

// NumWeights returns the total number of scalar weights, used to report
// model sizes (the paper compresses LPCE-I >10x via distillation).
func (ps *Params) NumWeights() int {
	n := 0
	for _, p := range ps.list {
		n += p.Size()
	}
	return n
}

// ClipGrad scales all gradients so their global L2 norm is at most maxNorm.
// Tree-recurrent models (deep 8-join plans) occasionally produce exploding
// gradients; clipping keeps Adam stable.
func (ps *Params) ClipGrad(maxNorm float64) {
	var total float64
	for _, p := range ps.list {
		total += p.Grad.Dot(p.Grad)
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range ps.list {
		p.Grad.Scale(scale)
	}
}

// Linear is a fully-connected layer y = Wx + b.
type Linear struct {
	W, B *Param
}

// NewLinear registers a Linear layer mapping in -> out features.
func NewLinear(ps *Params, name string, in, out int, rng *tensor.RNG) *Linear {
	return &Linear{
		W: ps.NewMatParam(name+".W", out, in, rng),
		B: ps.NewVecParam(name+".b", out),
	}
}

// Apply runs the layer on the tape.
func (l *Linear) Apply(t *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	out := t.NewNode(l.W.Rows)
	l.W.Mat().MatVec(x.Data, out.Data)
	out.Data.Add(l.B.Val)
	t.Record(func() {
		l.W.GradMat().AddOuter(1, out.Grad, x.Data)
		l.W.Mat().MatVecT(out.Grad, x.Grad)
		l.B.Grad.Add(out.Grad)
	})
	return out
}

// In and Out report the layer's feature dimensions.
func (l *Linear) In() int  { return l.W.Cols }
func (l *Linear) Out() int { return l.W.Rows }

// Activation selects the nonlinearity applied between MLP layers.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
	ActTanh
)

func applyAct(t *autodiff.Tape, a Activation, x *autodiff.Node) *autodiff.Node {
	switch a {
	case ActReLU:
		return t.ReLU(x)
	case ActSigmoid:
		return t.Sigmoid(x)
	case ActTanh:
		return t.Tanh(x)
	default:
		return x
	}
}

// MLP is a stack of Linear layers with a hidden activation between layers
// and an optional output activation. The paper's embed module is a 2-layer
// ReLU MLP and its output module a 2-layer MLP with sigmoid output.
type MLP struct {
	Layers []*Linear
	Hidden Activation
	Output Activation
}

// NewMLP registers an MLP with the given layer widths, e.g. dims =
// [in, hidden, out] builds two linear layers.
func NewMLP(ps *Params, name string, dims []int, hidden, output Activation, rng *tensor.RNG) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least an input and output dimension")
	}
	m := &MLP{Hidden: hidden, Output: output}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers,
			NewLinear(ps, fmt.Sprintf("%s.%d", name, i), dims[i], dims[i+1], rng))
	}
	return m
}

// ShareWeights rebuilds the MLP over a replica registry produced by
// Params.ShareWeights, resolving each layer's parameters by name. Training
// workers use it to run forward/backward against shared weights with
// private gradients.
func (m *MLP) ShareWeights(ps *Params) *MLP {
	out := &MLP{Hidden: m.Hidden, Output: m.Output}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, &Linear{W: ps.Get(l.W.Name), B: ps.Get(l.B.Name)})
	}
	return out
}

// Apply runs the MLP on the tape, returning the post-activation output.
func (m *MLP) Apply(t *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(t, h)
		if i+1 < len(m.Layers) {
			h = applyAct(t, m.Hidden, h)
		} else {
			h = applyAct(t, m.Output, h)
		}
	}
	return h
}

// ApplyPreOutput runs the MLP but returns both the final pre-activation
// logit and the activated output. Knowledge distillation (Eq. 5) matches the
// logit before the sigmoid.
func (m *MLP) ApplyPreOutput(t *autodiff.Tape, x *autodiff.Node) (logit, out *autodiff.Node) {
	h := x
	for i, l := range m.Layers {
		h = l.Apply(t, h)
		if i+1 < len(m.Layers) {
			h = applyAct(t, m.Hidden, h)
		}
	}
	return h, applyAct(t, m.Output, h)
}
