package nn

import (
	"math"

	"github.com/lpce-db/lpce/internal/autodiff"
)

// Cardinalities are learned in normalized log space: a model's sigmoid
// output p ∈ [0,1] represents ln(card)/ln(maxCard) where maxCard is the
// largest cardinality observed in the training set (paper §4.2). These
// helpers convert between the two representations.

// NormalizeCard maps a cardinality to the [0,1] training target.
func NormalizeCard(card, logMax float64) float64 {
	if card < 1 {
		card = 1
	}
	if logMax <= 0 {
		return 0
	}
	p := math.Log(card) / logMax
	if p > 1 {
		p = 1
	}
	return p
}

// DenormalizeCard maps a model output back to a cardinality estimate.
func DenormalizeCard(pred, logMax float64) float64 {
	if pred < 0 {
		pred = 0
	}
	if pred > 1 {
		pred = 1
	}
	return math.Exp(pred * logMax)
}

// QErrorLoss returns a differentiable scalar node holding the q-error
// between the model prediction (a scalar node in normalized log space) and
// the true cardinality:
//
//	q = max(c, c̃)/min(c, c̃) = exp(|p·L − ln c|)  with  c̃ = exp(p·L).
//
// This is the per-node term q_ij of the node-wise loss (Eq. 3) and the
// per-query term q_i of the query-wise loss (Eq. 2).
func QErrorLoss(t *autodiff.Tape, pred *autodiff.Node, trueCard, logMax float64) *autodiff.Node {
	if pred.Len() != 1 {
		panic("nn: QErrorLoss requires a scalar prediction node")
	}
	if trueCard < 1 {
		trueCard = 1
	}
	diff := pred.Data[0]*logMax - math.Log(trueCard)
	q := math.Exp(math.Abs(diff))
	out := t.NewNode(1)
	out.Data[0] = q
	t.Record(func() {
		g := out.Grad[0] * q * logMax
		if diff >= 0 {
			pred.Grad[0] += g
		} else {
			pred.Grad[0] -= g
		}
	})
	return out
}

// QError computes the plain (non-differentiable) q-error between a true and
// an estimated cardinality. Both are clamped to at least 1, matching the
// paper's convention that q ≥ 1.
func QError(trueCard, estCard float64) float64 {
	if trueCard < 1 {
		trueCard = 1
	}
	if estCard < 1 {
		estCard = 1
	}
	if trueCard > estCard {
		return trueCard / estCard
	}
	return estCard / trueCard
}
