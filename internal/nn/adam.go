package nn

import "math"

// Adam implements the Adam optimizer (the paper trains all models with
// Adam, batch size 50).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	step  int
}

// NewAdam returns an Adam optimizer with the conventional defaults and the
// given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter using the accumulated
// gradients, then leaves the gradients untouched (callers ZeroGrad before
// the next accumulation).
func (a *Adam) Step(ps *Params) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range ps.All() {
		for i, g := range p.Grad {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mHat := p.m[i] / c1
			vHat := p.v[i] / c2
			p.Val[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// StepCount reports how many updates have been applied.
func (a *Adam) StepCount() int { return a.step }
