package nn

import (
	"bytes"
	"math"
	"testing"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/tensor"
)

func TestLinearForwardShape(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(1)
	l := NewLinear(ps, "l", 3, 5, rng)
	if l.In() != 3 || l.Out() != 5 {
		t.Fatalf("dims = %d->%d", l.In(), l.Out())
	}
	tp := autodiff.NewTape()
	out := l.Apply(tp, tp.Input(tensor.Vec{1, 2, 3}))
	if out.Len() != 5 {
		t.Fatalf("out len = %d", out.Len())
	}
}

func TestLinearGradient(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(2)
	l := NewLinear(ps, "l", 4, 3, rng)
	x := tensor.Vec{0.5, -1, 2, 0.1}

	run := func() float64 {
		tp := autodiff.NewTape()
		in := tp.Input(x)
		out := tp.Sum(tp.Sigmoid(l.Apply(tp, in)))
		return out.Scalar()
	}

	tp := autodiff.NewTape()
	in := tp.Input(x)
	out := tp.Sum(tp.Sigmoid(l.Apply(tp, in)))
	ps.ZeroGrad()
	tp.Backward(out)

	const h = 1e-6
	// check weight gradients numerically
	for _, p := range ps.All() {
		for i := range p.Val {
			orig := p.Val[i]
			p.Val[i] = orig + h
			fp := run()
			p.Val[i] = orig - h
			fm := run()
			p.Val[i] = orig
			want := (fp - fm) / (2 * h)
			if math.Abs(p.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s grad[%d] = %v, numeric %v", p.Name, i, p.Grad[i], want)
			}
		}
	}
	// check input gradient numerically
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		fp := run()
		x[i] = orig - h
		fm := run()
		x[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(in.Grad[i]-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("input grad[%d] = %v, numeric %v", i, in.Grad[i], want)
		}
	}
}

func TestMLPStructure(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(3)
	m := NewMLP(ps, "mlp", []int{6, 8, 1}, ActReLU, ActSigmoid, rng)
	if len(m.Layers) != 2 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	tp := autodiff.NewTape()
	in := tp.Input(tensor.NewVec(6))
	out := m.Apply(tp, in)
	if out.Len() != 1 {
		t.Fatalf("out len = %d", out.Len())
	}
	if s := out.Scalar(); s < 0 || s > 1 {
		t.Fatalf("sigmoid output %v outside [0,1]", s)
	}
}

func TestMLPPreOutputLogit(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(4)
	m := NewMLP(ps, "mlp", []int{4, 6, 1}, ActReLU, ActSigmoid, rng)
	tp := autodiff.NewTape()
	x := tp.Input(tensor.Vec{1, -1, 0.5, 2})
	logit, out := m.ApplyPreOutput(tp, x)
	want := 1 / (1 + math.Exp(-logit.Scalar()))
	if math.Abs(out.Scalar()-want) > 1e-12 {
		t.Fatalf("sigmoid(logit) = %v, out = %v", want, out.Scalar())
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Fit y = sigmoid output to a fixed target from a fixed input; loss must
	// fall monotonically-ish and reach near zero.
	ps := NewParams()
	rng := tensor.NewRNG(5)
	m := NewMLP(ps, "m", []int{3, 16, 1}, ActReLU, ActSigmoid, rng)
	opt := NewAdam(0.01)
	x := tensor.Vec{0.2, -0.8, 1.5}
	const target = 0.73
	var first, last float64
	for epoch := 0; epoch < 400; epoch++ {
		tp := autodiff.NewTape()
		out := m.Apply(tp, tp.Input(x))
		diff := out.Scalar() - target
		loss := diff * diff
		if epoch == 0 {
			first = loss
		}
		last = loss
		ps.ZeroGrad()
		out.Grad[0] = 2 * diff
		tp.BackwardFrom()
		opt.Step(ps)
	}
	if last > first/100 || last > 1e-4 {
		t.Fatalf("Adam failed to fit: first %v, last %v", first, last)
	}
	if opt.StepCount() != 400 {
		t.Fatalf("step count = %d", opt.StepCount())
	}
}

func TestClipGrad(t *testing.T) {
	ps := NewParams()
	p := ps.NewVecParam("v", 3)
	copy(p.Grad, tensor.Vec{3, 4, 0}) // norm 5
	ps.ClipGrad(1)
	if n := p.Grad.Norm2(); math.Abs(n-1) > 1e-12 {
		t.Fatalf("clipped norm = %v", n)
	}
	// below-threshold gradients are untouched
	copy(p.Grad, tensor.Vec{0.1, 0, 0})
	ps.ClipGrad(1)
	if p.Grad[0] != 0.1 {
		t.Fatal("clip modified small gradient")
	}
}

func TestParamsRegistry(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(6)
	ps.NewMatParam("w", 2, 3, rng)
	ps.NewVecParam("b", 2)
	if ps.NumWeights() != 8 {
		t.Fatalf("weights = %d", ps.NumWeights())
	}
	if ps.Get("w") == nil || ps.Get("missing") != nil {
		t.Fatal("Get lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate-name panic")
		}
	}()
	ps.NewVecParam("w", 1)
}

func TestSaveLoadRoundtrip(t *testing.T) {
	build := func(seed int64) *Params {
		ps := NewParams()
		rng := tensor.NewRNG(seed)
		NewMLP(ps, "m", []int{4, 8, 1}, ActReLU, ActSigmoid, rng)
		return ps
	}
	src := build(7)
	dst := build(99) // different init
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.All() {
		q := dst.All()[i]
		for j := range p.Val {
			if p.Val[j] != q.Val[j] {
				t.Fatalf("param %s[%d] mismatch after load", p.Name, j)
			}
		}
	}
}

func TestLoadShapeMismatch(t *testing.T) {
	ps1 := NewParams()
	ps1.NewVecParam("b", 3)
	var buf bytes.Buffer
	if err := ps1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ps2 := NewParams()
	ps2.NewVecParam("b", 4)
	if err := ps2.Load(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestNormalizeDenormalizeRoundtrip(t *testing.T) {
	logMax := math.Log(1e6)
	for _, card := range []float64{1, 10, 1234, 99999, 1e6} {
		p := NormalizeCard(card, logMax)
		back := DenormalizeCard(p, logMax)
		if math.Abs(math.Log(back)-math.Log(card)) > 1e-9 {
			t.Fatalf("roundtrip %v -> %v -> %v", card, p, back)
		}
	}
	if NormalizeCard(0.5, logMax) != 0 {
		t.Fatal("cards below 1 should clamp to 0")
	}
	if NormalizeCard(1e9, logMax) != 1 {
		t.Fatal("cards above max should clamp to 1")
	}
}

func TestQError(t *testing.T) {
	if q := QError(100, 10); q != 10 {
		t.Fatalf("q = %v", q)
	}
	if q := QError(10, 100); q != 10 {
		t.Fatalf("q = %v", q)
	}
	if q := QError(5, 5); q != 1 {
		t.Fatalf("q = %v", q)
	}
	if q := QError(0, 0); q != 1 {
		t.Fatalf("q with zero cards = %v", q)
	}
}

func TestQErrorLossValueAndGradient(t *testing.T) {
	logMax := math.Log(1e6)
	trueCard := 500.0
	for _, predVal := range []float64{0.1, 0.45, 0.9} {
		tp := autodiff.NewTape()
		pred := tp.Input(tensor.Vec{predVal})
		loss := QErrorLoss(tp, pred, trueCard, logMax)
		est := DenormalizeCard(predVal, logMax)
		if want := QError(trueCard, est); math.Abs(loss.Scalar()-want) > 1e-6*want {
			t.Fatalf("loss = %v, want %v", loss.Scalar(), want)
		}
		tp.Backward(loss)
		// numeric gradient
		const h = 1e-7
		f := func(p float64) float64 {
			tp2 := autodiff.NewTape()
			return QErrorLoss(tp2, tp2.Input(tensor.Vec{p}), trueCard, logMax).Scalar()
		}
		want := (f(predVal+h) - f(predVal-h)) / (2 * h)
		if math.Abs(pred.Grad[0]-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("pred %v: grad = %v, numeric %v", predVal, pred.Grad[0], want)
		}
	}
}

func TestQErrorLossGradientDirection(t *testing.T) {
	// Underestimation must push the prediction up, overestimation down.
	logMax := math.Log(1e6)
	tp := autodiff.NewTape()
	low := tp.Input(tensor.Vec{0.1}) // estimates ~4, true 1000 → under
	loss := QErrorLoss(tp, low, 1000, logMax)
	tp.Backward(loss)
	if low.Grad[0] >= 0 {
		t.Fatalf("underestimate should have negative gradient (increase pred), got %v", low.Grad[0])
	}
	tp2 := autodiff.NewTape()
	high := tp2.Input(tensor.Vec{0.9})
	loss2 := QErrorLoss(tp2, high, 10, logMax)
	tp2.Backward(loss2)
	if high.Grad[0] <= 0 {
		t.Fatalf("overestimate should have positive gradient (decrease pred), got %v", high.Grad[0])
	}
}
