package nn

import (
	"testing"

	"github.com/lpce-db/lpce/internal/autodiff"
	"github.com/lpce-db/lpce/internal/tensor"
)

func TestShareWeightsAliasesValNotGrad(t *testing.T) {
	ps := NewParams()
	rng := tensor.NewRNG(1)
	ps.NewMatParam("w", 3, 4, rng)
	ps.NewVecParam("b", 4)

	rep := ps.ShareWeights()
	if rep.NumWeights() != ps.NumWeights() {
		t.Fatal("replica changed weight count")
	}
	for i, p := range ps.All() {
		r := rep.All()[i]
		if r.Name != p.Name {
			t.Fatalf("param %d renamed: %s vs %s", i, r.Name, p.Name)
		}
		// Weights alias: a write through the master is visible in the
		// replica without copying.
		p.Val[0] = 42
		if r.Val[0] != 42 {
			t.Fatalf("%s: replica does not alias weights", p.Name)
		}
		// Gradients are private: replica accumulation must not leak into
		// the master buffer.
		r.Grad[0] = 7
		if p.Grad[0] == 7 {
			t.Fatalf("%s: replica shares gradient buffer", p.Name)
		}
	}
}

func TestMLPShareWeightsResolvesLayers(t *testing.T) {
	ps := NewParams()
	m := NewMLP(ps, "mlp", []int{4, 8, 2}, ActReLU, ActSigmoid, tensor.NewRNG(2))
	rep := m.ShareWeights(ps.ShareWeights())

	x := tensor.NewVec(4)
	tensor.NewRNG(3).FillNormal(x, 0, 1)
	forward := func(mlp *MLP) tensor.Vec {
		tp := autodiff.NewTape()
		return mlp.Apply(tp, tp.Const(x)).Data
	}
	a, b := forward(m), forward(rep)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shared-weight MLP diverges from master")
		}
	}
}

func TestGradBufferRoundtrip(t *testing.T) {
	ps := NewParams()
	ps.NewMatParam("w", 2, 3, tensor.NewRNG(4))
	ps.NewVecParam("b", 3)
	for i, p := range ps.All() {
		for j := range p.Grad {
			p.Grad[j] = float64(i*10 + j + 1)
		}
	}
	buf := make([]float64, ps.NumWeights())
	if n := ps.CopyGradTo(buf, 0); n != len(buf) {
		t.Fatalf("CopyGradTo wrote %d of %d", n, len(buf))
	}
	dst := ps.ShareWeights()
	if n := dst.AddGradFrom(buf, 0); n != len(buf) {
		t.Fatalf("AddGradFrom read %d of %d", n, len(buf))
	}
	if n := dst.AddGradFrom(buf, 0); n != len(buf) {
		t.Fatal("second accumulation failed")
	}
	for i, p := range ps.All() {
		d := dst.All()[i]
		for j := range p.Grad {
			if d.Grad[j] != 2*p.Grad[j] {
				t.Fatalf("grad[%d][%d] = %v, want %v", i, j, d.Grad[j], 2*p.Grad[j])
			}
		}
	}
}
