package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob wire format for a parameter registry.
type snapshot struct {
	Names   []string
	Shapes  [][2]int
	Weights [][]float64
}

// Save serializes the parameter values (not optimizer state) to w.
func (ps *Params) Save(w io.Writer) error {
	return ps.EncodeGob(gob.NewEncoder(w))
}

// EncodeGob writes the parameters as one message of an existing gob stream,
// so callers can interleave parameter snapshots with their own metadata
// (mixing several gob encoders on one writer corrupts the stream).
func (ps *Params) EncodeGob(enc *gob.Encoder) error {
	s := snapshot{}
	for _, p := range ps.list {
		s.Names = append(s.Names, p.Name)
		s.Shapes = append(s.Shapes, [2]int{p.Rows, p.Cols})
		s.Weights = append(s.Weights, p.Val)
	}
	return enc.Encode(s)
}

// Load restores parameter values previously written by Save. The registry
// must contain parameters with matching names and shapes (i.e. the model
// must be constructed with the same architecture before loading).
func (ps *Params) Load(r io.Reader) error {
	return ps.DecodeGob(gob.NewDecoder(r))
}

// DecodeGob reads one parameter snapshot from an existing gob stream.
func (ps *Params) DecodeGob(dec *gob.Decoder) error {
	var s snapshot
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("nn: decode snapshot: %w", err)
	}
	for i, name := range s.Names {
		p := ps.Get(name)
		if p == nil {
			return fmt.Errorf("nn: snapshot parameter %q not in model", name)
		}
		if p.Rows != s.Shapes[i][0] || p.Cols != s.Shapes[i][1] {
			return fmt.Errorf("nn: parameter %q shape mismatch: model %dx%d, snapshot %dx%d",
				name, p.Rows, p.Cols, s.Shapes[i][0], s.Shapes[i][1])
		}
		copy(p.Val, s.Weights[i])
	}
	return nil
}

// SaveFile writes the parameters to path, creating or truncating it.
func (ps *Params) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ps.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile restores parameters from path.
func (ps *Params) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ps.Load(f)
}
