// Package datagen builds the synthetic IMDB-like database used throughout
// the repository. The real IMDB dataset (22 tables, 2.1M movies) is the
// paper's benchmark because of two properties that break
// independence-assumption estimators: heavy skew (a few popular movies
// account for most cast/info rows) and cross-table correlation (a movie's
// kind predicts its year, its keywords, and its cast structure). The
// generator plants exactly those pathologies deterministically:
//
//   - Zipfian fan-out: each title draws a popularity score from a Zipf
//     distribution; the number of cast_info / movie_info / movie_keyword /
//     movie_companies rows per title is proportional to it.
//   - kind ↔ year correlation: production_year is sampled from a
//     kind-specific window, so predicates on both columns are far from
//     independent.
//   - kind ↔ keyword correlation: keywords cluster by title kind, so a
//     keyword range predicate implies a kind distribution.
//   - year ↔ info correlation: movie_info.info values depend on info_type
//     and production_year.
//   - role ↔ gender correlation in cast_info/name.
//
// The schema is a trimmed Join-Order-Benchmark core: title at the center,
// fact tables referencing it, and dimension tables hanging off the facts,
// supporting queries of up to 8 joins (9 relations).
package datagen

import (
	"math"
	"math/rand"

	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/storage"
)

// Config controls the size and randomness of the generated database.
type Config struct {
	// Titles is the number of rows in the central title table; all other
	// fact-table sizes derive from it.
	Titles int
	// Seed makes generation deterministic.
	Seed int64
	// ZipfS is the power-law exponent for title popularity ranks: title
	// with popularity rank r gets weight 1/(r+1)^ZipfS. Larger is more
	// skewed. Defaults to 0.75 when zero.
	ZipfS float64
}

func (c Config) withDefaults() Config {
	if c.Titles <= 0 {
		c.Titles = 2000
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 0.75
	}
	return c
}

// BuildSchema constructs the IMDB-lite schema. It is exported separately
// from Generate so tests and tools can inspect the schema without paying
// for data generation.
func BuildSchema() *catalog.Schema {
	s := catalog.NewSchema()

	kindType := s.AddTable("kind_type", catalog.PK("id"))
	infoType := s.AddTable("info_type", catalog.PK("id"))
	companyType := s.AddTable("company_type", catalog.PK("id"))
	roleType := s.AddTable("role_type", catalog.PK("id"))

	title := s.AddTable("title",
		catalog.PK("id"),
		catalog.FK("kind_id", kindType.Column("id")),
		catalog.Attr("production_year"),
		catalog.Attr("phonetic_code"),
		catalog.Attr("season_nr"),
	)
	companyName := s.AddTable("company_name",
		catalog.PK("id"),
		catalog.Attr("country_code"),
		catalog.Attr("name_code"),
	)
	keyword := s.AddTable("keyword",
		catalog.PK("id"),
		catalog.Attr("phonetic_code"),
	)
	name := s.AddTable("name",
		catalog.PK("id"),
		catalog.Attr("gender"),
		catalog.Attr("name_code"),
	)
	charName := s.AddTable("char_name",
		catalog.PK("id"),
		catalog.Attr("name_code"),
	)

	s.AddTable("movie_companies",
		catalog.FK("movie_id", title.Column("id")),
		catalog.FK("company_id", companyName.Column("id")),
		catalog.FK("company_type_id", companyType.Column("id")),
	)
	s.AddTable("movie_info",
		catalog.FK("movie_id", title.Column("id")),
		catalog.FK("info_type_id", infoType.Column("id")),
		catalog.Attr("info"),
	)
	s.AddTable("movie_info_idx",
		catalog.FK("movie_id", title.Column("id")),
		catalog.FK("info_type_id", infoType.Column("id")),
		catalog.Attr("info"),
	)
	s.AddTable("movie_keyword",
		catalog.FK("movie_id", title.Column("id")),
		catalog.FK("keyword_id", keyword.Column("id")),
	)
	s.AddTable("cast_info",
		catalog.FK("movie_id", title.Column("id")),
		catalog.FK("person_id", name.Column("id")),
		catalog.FK("role_id", roleType.Column("id")),
		catalog.FK("person_role_id", charName.Column("id")),
	)
	return s
}

// Generate builds the full database deterministically from cfg.
func Generate(cfg Config) *storage.Database {
	cfg = cfg.withDefaults()
	schema := BuildSchema()
	db := storage.NewDatabase(schema)
	g := &generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		schema: schema,
		db:     db,
	}
	g.run()
	return db
}

type generator struct {
	cfg    Config
	rng    *rand.Rand
	schema *catalog.Schema
	db     *storage.Database

	// per-title latent state driving correlations
	titleKind []int64
	titleYear []int64
	titlePop  []float64 // popularity weight in (0,1]
}

// Dimension-table cardinalities relative to Titles.
const (
	numKinds        = 7
	numInfoTypes    = 40
	numCompanyTypes = 4
	numRoleTypes    = 11
)

func (g *generator) run() {
	n := g.cfg.Titles
	g.fillEnum("kind_type", numKinds)
	g.fillEnum("info_type", numInfoTypes)
	g.fillEnum("company_type", numCompanyTypes)
	g.fillEnum("role_type", numRoleTypes)

	g.fillTitle(n)
	numCompanies := maxInt(n/8, 16)
	numKeywords := maxInt(n/4, 32)
	numNames := maxInt(n/2, 32)
	numChars := maxInt(n/3, 32)
	g.fillCompanyName(numCompanies)
	g.fillKeyword(numKeywords)
	g.fillName(numNames)
	g.fillCharName(numChars)

	g.fillMovieCompanies(numCompanies)
	g.fillMovieInfo("movie_info", 3.0)
	g.fillMovieInfo("movie_info_idx", 1.2)
	g.fillMovieKeyword(numKeywords)
	g.fillCastInfo(numNames, numChars)

	for _, t := range g.db.Tables {
		t.FinishLoad()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (g *generator) newTable(name string, rows int) *storage.Table {
	meta := g.schema.Table(name)
	t := storage.NewTable(meta, rows)
	g.db.Tables[meta.ID] = t
	return t
}

func (g *generator) fillEnum(name string, n int) {
	t := g.newTable(name, n)
	ids := t.ColByName("id")
	for i := range ids {
		ids[i] = int64(i)
	}
}

// fillTitle populates the central table with the kind↔year correlation:
// kind k movies are drawn from a year window that shifts with k, so
// P(year | kind) is far from the marginal P(year).
func (g *generator) fillTitle(n int) {
	t := g.newTable("title", n)
	ids := t.ColByName("id")
	kinds := t.ColByName("kind_id")
	years := t.ColByName("production_year")
	phonetic := t.ColByName("phonetic_code")
	seasons := t.ColByName("season_nr")

	g.titleKind = make([]int64, n)
	g.titleYear = make([]int64, n)
	g.titlePop = make([]float64, n)

	// Power-law popularity: each title gets a random rank r in a
	// permutation and weight 1/(r+1)^s, so a handful of titles dominate the
	// fact-table fan-out — exactly the skew that makes IMDB hard for
	// independence-based estimators. Popularity is additionally boosted for
	// recent titles (yearBoost below), planting a year↔fan-out correlation:
	// a production_year predicate changes the *average* join fan-out, which
	// per-column statistics cannot see.
	ranks := g.rng.Perm(n)
	for i := 0; i < n; i++ {
		g.titlePop[i] = math.Pow(1/float64(ranks[i]+1), g.cfg.ZipfS)
	}

	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		// skewed kind: kinds 0 and 1 dominate (movies and TV episodes in
		// real IMDB), matching the real dataset's imbalance.
		k := int64(g.skewedKind())
		kinds[i] = k
		g.titleKind[i] = k

		// kind-dependent year window, width 40, sliding by kind
		base := 1940 + int(k)*9
		year := int64(base + g.rng.Intn(41))
		years[i] = year
		g.titleYear[i] = year

		phonetic[i] = int64(g.rng.Intn(1000))
		// season_nr: only TV kinds (>=4) have seasons; else 0. Another
		// planted correlation.
		if k >= 4 {
			seasons[i] = int64(1 + g.rng.Intn(30))
		} else {
			seasons[i] = 0
		}

		// year↔popularity correlation: recent titles are up to 6x more
		// popular, so predicates on production_year shift join fan-outs.
		g.titlePop[i] *= 1 + 5*float64(year-1940)/80
	}

	// normalize popularity to mean 1 so fan-out means are calibrated
	var wsum float64
	for _, w := range g.titlePop {
		wsum += w
	}
	norm := float64(n) / wsum
	for i := range g.titlePop {
		g.titlePop[i] *= norm
	}
}

// skewedKind draws a kind with an imbalanced categorical distribution.
func (g *generator) skewedKind() int {
	r := g.rng.Float64()
	switch {
	case r < 0.45:
		return 0
	case r < 0.70:
		return 1
	case r < 0.82:
		return 2
	case r < 0.90:
		return 3
	case r < 0.95:
		return 4
	case r < 0.98:
		return 5
	default:
		return 6
	}
}

func (g *generator) fillCompanyName(n int) {
	t := g.newTable("company_name", n)
	ids := t.ColByName("id")
	country := t.ColByName("country_code")
	nameCode := t.ColByName("name_code")
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		// skewed country distribution: country 0 ("us") dominates
		r := g.rng.Float64()
		switch {
		case r < 0.4:
			country[i] = 0
		case r < 0.6:
			country[i] = 1
		default:
			country[i] = int64(2 + g.rng.Intn(38))
		}
		nameCode[i] = int64(g.rng.Intn(5000))
	}
}

func (g *generator) fillKeyword(n int) {
	t := g.newTable("keyword", n)
	ids := t.ColByName("id")
	phonetic := t.ColByName("phonetic_code")
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		phonetic[i] = int64(g.rng.Intn(2000))
	}
}

func (g *generator) fillName(n int) {
	t := g.newTable("name", n)
	ids := t.ColByName("id")
	gender := t.ColByName("gender")
	nameCode := t.ColByName("name_code")
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		if g.rng.Float64() < 0.62 {
			gender[i] = 0 // male-skewed, as in real IMDB
		} else {
			gender[i] = 1
		}
		nameCode[i] = int64(g.rng.Intn(8000))
	}
}

func (g *generator) fillCharName(n int) {
	t := g.newTable("char_name", n)
	ids := t.ColByName("id")
	nameCode := t.ColByName("name_code")
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		nameCode[i] = int64(g.rng.Intn(6000))
	}
}

// fanout returns the number of fact rows for title i, proportional to its
// normalized popularity weight (mean 1): popular titles have long cast
// lists and many info rows, with stochastic rounding so the expected total
// is mean per title.
func (g *generator) fanout(i int, mean float64) int {
	f := mean * g.titlePop[i]
	base := int(f)
	if g.rng.Float64() < f-float64(base) {
		base++
	}
	if base > 400 {
		base = 400
	}
	return base
}

func (g *generator) fillMovieCompanies(numCompanies int) {
	type row struct{ movie, company, ctype int64 }
	var rows []row
	for i := range g.titlePop {
		f := g.fanout(i, 2.2)
		for j := 0; j < f; j++ {
			// company choice skewed to low ids (big studios)
			c := int64(g.rng.Intn(numCompanies))
			if g.rng.Float64() < 0.5 {
				c = int64(g.rng.Intn(maxInt(numCompanies/10, 1)))
			}
			rows = append(rows, row{int64(i), c, int64(g.rng.Intn(numCompanyTypes))})
		}
	}
	t := g.newTable("movie_companies", len(rows))
	mid := t.ColByName("movie_id")
	cid := t.ColByName("company_id")
	ctid := t.ColByName("company_type_id")
	for i, r := range rows {
		mid[i], cid[i], ctid[i] = r.movie, r.company, r.ctype
	}
}

// fillMovieInfo populates movie_info or movie_info_idx with the
// year↔info correlation: the info value is a function of info_type and the
// movie's production year plus noise, so a range predicate on info value
// implies a year (and hence kind) distribution.
func (g *generator) fillMovieInfo(table string, mean float64) {
	type row struct{ movie, itype, info int64 }
	var rows []row
	for i := range g.titlePop {
		f := g.fanout(i, mean)
		for j := 0; j < f; j++ {
			it := int64(g.rng.Intn(numInfoTypes))
			// info value: base per type + year-linked trend + noise
			info := it*100 + (g.titleYear[i] - 1940) + int64(g.rng.Intn(20))
			rows = append(rows, row{int64(i), it, info})
		}
	}
	t := g.newTable(table, len(rows))
	mid := t.ColByName("movie_id")
	itid := t.ColByName("info_type_id")
	info := t.ColByName("info")
	for i, r := range rows {
		mid[i], itid[i], info[i] = r.movie, r.itype, r.info
	}
}

// fillMovieKeyword plants the kind↔keyword correlation: keywords cluster by
// the movie's kind, so the join result of movie_keyword with a keyword-range
// predicate is highly non-uniform across kinds.
func (g *generator) fillMovieKeyword(numKeywords int) {
	type row struct{ movie, keyword int64 }
	var rows []row
	clusterWidth := maxInt(numKeywords/numKinds, 1)
	for i := range g.titlePop {
		f := g.fanout(i, 2.6)
		base := int(g.titleKind[i]) * clusterWidth
		for j := 0; j < f; j++ {
			var k int
			if g.rng.Float64() < 0.7 {
				// in-cluster keyword for this kind
				k = base + g.rng.Intn(clusterWidth)
			} else {
				k = g.rng.Intn(numKeywords)
			}
			if k >= numKeywords {
				k = numKeywords - 1
			}
			rows = append(rows, row{int64(i), int64(k)})
		}
	}
	t := g.newTable("movie_keyword", len(rows))
	mid := t.ColByName("movie_id")
	kid := t.ColByName("keyword_id")
	for i, r := range rows {
		mid[i], kid[i] = r.movie, r.keyword
	}
}

// fillCastInfo is the largest fact table, with the role↔popularity
// correlation: popular movies have larger casts and more minor roles.
func (g *generator) fillCastInfo(numNames, numChars int) {
	type row struct{ movie, person, role, char int64 }
	var rows []row
	for i := range g.titlePop {
		f := g.fanout(i, 4.5)
		for j := 0; j < f; j++ {
			// person choice skewed to low ids (prolific actors)
			p := int64(g.rng.Intn(numNames))
			if g.rng.Float64() < 0.4 {
				p = int64(g.rng.Intn(maxInt(numNames/20, 1)))
			}
			// early cast positions are lead roles (low role ids)
			role := int64(j)
			if role >= numRoleTypes {
				role = int64(g.rng.Intn(numRoleTypes))
			}
			rows = append(rows, row{int64(i), p, role, int64(g.rng.Intn(numChars))})
		}
	}
	t := g.newTable("cast_info", len(rows))
	mid := t.ColByName("movie_id")
	pid := t.ColByName("person_id")
	rid := t.ColByName("role_id")
	chid := t.ColByName("person_role_id")
	for i, r := range rows {
		mid[i], pid[i], rid[i], chid[i] = r.movie, r.person, r.role, r.char
	}
}
