package datagen

import (
	"math"
	"testing"
)

func TestSchemaShape(t *testing.T) {
	s := BuildSchema()
	want := []string{
		"kind_type", "info_type", "company_type", "role_type",
		"title", "company_name", "keyword", "name", "char_name",
		"movie_companies", "movie_info", "movie_info_idx", "movie_keyword", "cast_info",
	}
	if len(s.Tables) != len(want) {
		t.Fatalf("tables = %d, want %d", len(s.Tables), len(want))
	}
	for _, name := range want {
		if s.Table(name) == nil {
			t.Fatalf("missing table %s", name)
		}
	}
	// the join graph must support 8-join (9-relation) queries
	adj := s.JoinableTables()
	title := s.Table("title")
	if len(adj[title.ID]) < 5 {
		t.Fatalf("title should join with >=5 fact tables, got %d", len(adj[title.ID]))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Titles: 200, Seed: 5})
	b := Generate(Config{Titles: 200, Seed: 5})
	ta, tb := a.TableByName("cast_info"), b.TableByName("cast_info")
	if ta.NumRows() != tb.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", ta.NumRows(), tb.NumRows())
	}
	for c := range ta.Cols {
		for r := range ta.Cols[c] {
			if ta.Cols[c][r] != tb.Cols[c][r] {
				t.Fatalf("cell (%d,%d) differs", c, r)
			}
		}
	}
	c := Generate(Config{Titles: 200, Seed: 6})
	if c.TableByName("cast_info").NumRows() == ta.NumRows() &&
		c.TableByName("movie_keyword").NumRows() == a.TableByName("movie_keyword").NumRows() {
		t.Fatal("different seeds should change fact-table sizes")
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := Generate(Config{Titles: 300, Seed: 1})
	for _, tab := range db.Tables {
		for _, col := range tab.Meta.Columns {
			if col.Ref == nil {
				continue
			}
			refRows := int64(db.Table(col.Ref.Table).NumRows())
			for r, v := range tab.Cols[col.Pos] {
				if v < 0 || v >= refRows {
					t.Fatalf("%s row %d: FK value %d outside [0,%d)", col.QualifiedName(), r, v, refRows)
				}
			}
		}
	}
}

func TestStatsFilled(t *testing.T) {
	db := Generate(Config{Titles: 300, Seed: 2})
	year := db.Schema.Table("title").Column("production_year")
	if year.NDV == 0 || year.Min == 0 || year.Max <= year.Min {
		t.Fatalf("year stats not filled: min %d max %d ndv %d", year.Min, year.Max, year.NDV)
	}
}

func TestZipfSkewInFanout(t *testing.T) {
	db := Generate(Config{Titles: 1000, Seed: 3})
	ci := db.TableByName("cast_info")
	counts := map[int64]int{}
	for _, m := range ci.ColByName("movie_id") {
		counts[m]++
	}
	// skew: the busiest movie should have far more rows than the average
	maxC, total := 0, 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	avg := float64(total) / float64(len(counts))
	if float64(maxC) < 4*avg {
		t.Fatalf("fan-out not skewed: max %d vs avg %.1f", maxC, avg)
	}
}

func TestKindYearCorrelation(t *testing.T) {
	db := Generate(Config{Titles: 2000, Seed: 4})
	title := db.TableByName("title")
	kinds := title.ColByName("kind_id")
	years := title.ColByName("production_year")
	meanYear := func(kind int64) float64 {
		var s, n float64
		for i, k := range kinds {
			if k == kind {
				s += float64(years[i])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / n
	}
	m0, m6 := meanYear(0), meanYear(6)
	if m0 == 0 || m6 == 0 {
		t.Skip("kind missing in small sample")
	}
	if math.Abs(m6-m0) < 20 {
		t.Fatalf("kind-year correlation too weak: mean(kind0)=%.1f mean(kind6)=%.1f", m0, m6)
	}
}

func TestKindKeywordCorrelation(t *testing.T) {
	db := Generate(Config{Titles: 2000, Seed: 8})
	title := db.TableByName("title")
	mk := db.TableByName("movie_keyword")
	kinds := title.ColByName("kind_id")
	numKeywords := db.TableByName("keyword").NumRows()
	clusterWidth := numKeywords / numKinds

	// for kind-0 movies, keywords should concentrate in cluster 0
	inCluster, total := 0, 0
	for r, m := range mk.ColByName("movie_id") {
		if kinds[m] != 0 {
			continue
		}
		total++
		k := mk.ColByName("keyword_id")[r]
		if k < int64(clusterWidth) {
			inCluster++
		}
	}
	if total == 0 {
		t.Skip("no kind-0 keywords")
	}
	frac := float64(inCluster) / float64(total)
	if frac < 0.5 {
		t.Fatalf("keyword clustering too weak: %.2f of kind-0 keywords in cluster 0", frac)
	}
}

func TestDefaultsApplied(t *testing.T) {
	db := Generate(Config{})
	if db.TableByName("title").NumRows() != 2000 {
		t.Fatalf("default titles = %d", db.TableByName("title").NumRows())
	}
}

func TestSeasonOnlyForTVKinds(t *testing.T) {
	db := Generate(Config{Titles: 500, Seed: 9})
	title := db.TableByName("title")
	kinds := title.ColByName("kind_id")
	seasons := title.ColByName("season_nr")
	for i := range kinds {
		if kinds[i] < 4 && seasons[i] != 0 {
			t.Fatalf("movie kind %d has season %d", kinds[i], seasons[i])
		}
		if kinds[i] >= 4 && seasons[i] == 0 {
			t.Fatalf("tv kind %d has no season", kinds[i])
		}
	}
}
