package obs

import (
	"sync"
	"time"

	"github.com/lpce-db/lpce/internal/query"
)

// OpStats is one operator's runtime record from one execution attempt: what
// the optimizer predicted, what actually happened, and how long it took.
// Wall time is inclusive of children (the EXPLAIN ANALYZE convention).
type OpStats struct {
	// Op is the physical operator name (SeqScan, HashJoin, ...), which for
	// join nodes identifies the join algorithm chosen.
	Op string `json:"op"`
	// Mask is the query-relation subset the operator covers; unique per
	// plan tree, so it keys operator lookup during rendering.
	Mask query.BitSet `json:"mask"`
	// EstRows is the optimizer's cardinality estimate for the subset.
	EstRows float64 `json:"est_rows"`
	// ActualRows is the exact output cardinality, or -1 when the operator
	// did not run to completion (budget exhaustion or a re-optimization
	// pause unwound it first).
	ActualRows float64 `json:"actual_rows"`
	// Rows counts the tuples the operator emitted before stopping; equals
	// ActualRows for completed operators.
	Rows int64 `json:"rows"`
	// Batches counts the tuple batches the operator emitted; zero for
	// operators executed on the scalar (tuple-at-a-time) path.
	Batches int64 `json:"batches,omitempty"`
	// Wall is the inclusive wall-clock time from Open to exhaustion (or to
	// teardown for operators that never exhausted).
	Wall time.Duration `json:"wall_ns"`
}

// QError returns the q-error between the operator's estimate and its actual
// cardinality, or 0 when the actual is unknown.
func (s OpStats) QError() float64 {
	if s.ActualRows < 0 {
		return 0
	}
	return QError(s.ActualRows, s.EstRows)
}

// QError is the symmetric relative error max(act/est, est/act) with both
// sides clamped to at least one row, the paper's Eq. 2.
func QError(actual, est float64) float64 {
	if actual < 1 {
		actual = 1
	}
	if est < 1 {
		est = 1
	}
	if actual > est {
		return actual / est
	}
	return est / actual
}

// ExecTrace records one execution attempt of one plan. It is written by a
// single executor goroutine and read only after the attempt finishes, so it
// needs no lock. All methods are nil-safe no-ops.
type ExecTrace struct {
	// Round is the attempt index within the query (0 = initial plan, n>0 =
	// after the n-th re-optimization).
	Round int `json:"round"`
	// Ops holds per-operator stats in teardown order.
	Ops []OpStats `json:"ops"`
}

// AddOp appends one operator record.
func (t *ExecTrace) AddOp(s OpStats) {
	if t == nil {
		return
	}
	t.Ops = append(t.Ops, s)
}

// ByMask returns the stats of the operator covering mask, or nil.
func (t *ExecTrace) ByMask(mask query.BitSet) *OpStats {
	if t == nil {
		return nil
	}
	for i := range t.Ops {
		if t.Ops[i].Mask == mask {
			return &t.Ops[i]
		}
	}
	return nil
}

// ReoptEvent records one materialization checkpoint seen by the
// re-optimization controller: the observed cardinality, the q-error against
// the estimate, and whether re-planning fired (and if not, why).
type ReoptEvent struct {
	Round      int          `json:"round"`
	Op         string       `json:"op"`
	Mask       query.BitSet `json:"mask"`
	EstRows    float64      `json:"est_rows"`
	ActualRows float64      `json:"actual_rows"`
	QError     float64      `json:"q_error"`
	// Triggered reports whether this checkpoint paused execution for
	// re-planning.
	Triggered bool `json:"triggered"`
	// Suppressed names the rule that kept a checkpoint from triggering:
	// "below-threshold", "max-reopts", "remaining-cost", or "" when the
	// event triggered.
	Suppressed string `json:"suppressed,omitempty"`
	// PlanDiff summarises how the plan changed after a triggered event
	// ("plan unchanged" when re-planning chose the same plan again).
	PlanDiff string `json:"plan_diff,omitempty"`
}

// QueryTrace is the structured trace of one query's end-to-end execution:
// one ExecTrace per attempt, the checkpoint events between them, and the
// paper's four-phase time decomposition. It is written by the one goroutine
// executing the query; Observer.Observe publishes it for aggregation. All
// methods are nil-safe no-ops.
type QueryTrace struct {
	Fingerprint uint64 `json:"fingerprint"`
	Estimator   string `json:"estimator"`

	Rounds []*ExecTrace `json:"rounds"`
	Events []ReoptEvent `json:"events,omitempty"`

	PlanTime  time.Duration `json:"plan_ns"`
	InferTime time.Duration `json:"infer_ns"`
	ReoptTime time.Duration `json:"reopt_ns"`
	ExecTime  time.Duration `json:"exec_ns"`

	Count    int  `json:"count"`
	TimedOut bool `json:"timed_out,omitempty"`
	// ExecWork is the executor work units consumed across all attempts — the
	// deterministic counterpart of ExecTime.
	ExecWork int64 `json:"exec_work"`
}

// NewRound starts the trace of the next execution attempt and returns it
// (nil from a nil QueryTrace, which downstream recording tolerates).
func (q *QueryTrace) NewRound() *ExecTrace {
	if q == nil {
		return nil
	}
	t := &ExecTrace{Round: len(q.Rounds)}
	q.Rounds = append(q.Rounds, t)
	return t
}

// FinalRound returns the last execution attempt's trace, or nil.
func (q *QueryTrace) FinalRound() *ExecTrace {
	if q == nil || len(q.Rounds) == 0 {
		return nil
	}
	return q.Rounds[len(q.Rounds)-1]
}

// AddEvent records a checkpoint event, stamping it with the current round.
func (q *QueryTrace) AddEvent(e ReoptEvent) {
	if q == nil {
		return
	}
	if n := len(q.Rounds); n > 0 {
		e.Round = n - 1
	}
	q.Events = append(q.Events, e)
}

// AttachPlanDiff annotates the most recent triggered event with the
// plan-switch summary computed after re-planning.
func (q *QueryTrace) AttachPlanDiff(diff string) {
	if q == nil {
		return
	}
	for i := len(q.Events) - 1; i >= 0; i-- {
		if q.Events[i].Triggered {
			q.Events[i].PlanDiff = diff
			return
		}
	}
}

// Observer bundles the three observability pieces — metrics registry,
// per-query traces, CE evaluation — behind one handle that the engine
// threads through a run. It is safe for concurrent use by parallel workers;
// a nil Observer (and everything obtained through it) records nothing.
type Observer struct {
	metrics *Registry
	ce      *CEEval

	mu     sync.Mutex
	traces []*QueryTrace
	// traceCap, when > 0, bounds the retained traces: once full, publishing
	// a new trace drops the oldest. Long-running processes set it so an
	// observer over millions of queries keeps a window, not a leak.
	traceCap int
	dropped  int64
}

// NewObserver returns an observer with a fresh registry and CE evaluator.
func NewObserver() *Observer {
	return &Observer{metrics: NewRegistry(), ce: NewCEEval()}
}

// Registry returns the metrics registry (nil from a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// CE returns the CE evaluator (nil from a nil observer).
func (o *Observer) CE() *CEEval {
	if o == nil {
		return nil
	}
	return o.ce
}

// NewQueryTrace returns an unpublished trace for one query execution; the
// caller publishes it with Observe once the query finishes. Returns nil
// from a nil observer.
func (o *Observer) NewQueryTrace(fingerprint uint64, estimator string) *QueryTrace {
	if o == nil {
		return nil
	}
	return &QueryTrace{Fingerprint: fingerprint, Estimator: estimator}
}

// SetTraceCap bounds the retained query traces to the most recent n; 0
// restores the default unbounded retention. The metrics registry and CE
// evaluation are unaffected — only the per-query trace window is bounded.
func (o *Observer) SetTraceCap(n int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.traceCap = n
	if n > 0 && len(o.traces) > n {
		o.dropped += int64(len(o.traces) - n)
		o.traces = append([]*QueryTrace(nil), o.traces[len(o.traces)-n:]...)
	}
	o.mu.Unlock()
}

// DroppedTraces returns how many traces the cap has discarded.
func (o *Observer) DroppedTraces() int64 {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.dropped
}

// Observe publishes a finished query trace for aggregation.
func (o *Observer) Observe(t *QueryTrace) {
	if o == nil || t == nil {
		return
	}
	o.mu.Lock()
	o.traces = append(o.traces, t)
	if o.traceCap > 0 && len(o.traces) > o.traceCap {
		over := len(o.traces) - o.traceCap
		o.dropped += int64(over)
		// Shift in place; traces are pointers, so the copy is cheap, and
		// re-slicing from the front would pin dropped traces in the backing
		// array forever.
		copy(o.traces, o.traces[over:])
		o.traces = o.traces[:o.traceCap]
	}
	o.mu.Unlock()
}

// Traces returns a snapshot of the published query traces.
func (o *Observer) Traces() []*QueryTrace {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*QueryTrace(nil), o.traces...)
}
