package obs

import (
	"sort"
	"time"
)

// OpAggregate summarises every execution of one physical operator type
// across a workload: how many instances ran, the rows they produced, the
// wall time they absorbed, and how the optimizer's estimates distributed
// against reality.
type OpAggregate struct {
	Op          string      `json:"op"`
	Count       int         `json:"count"`
	Rows        int64       `json:"rows"`
	WallSeconds float64     `json:"wall_seconds"`
	QError      HistSummary `json:"q_error"`
}

// PhaseSummary is the latency distribution of one end-to-end phase (the
// paper's T_P, T_I, T_R, T_E, and their sum) in seconds.
type PhaseSummary struct {
	Phase   string      `json:"phase"`
	Seconds HistSummary `json:"seconds"`
}

// Report is the aggregated, JSON-serializable view of everything an
// Observer collected: workload counts, phase latency distributions,
// per-operator runtime stats, every re-optimization event, the CE
// evaluation tables, and the raw metrics snapshot.
type Report struct {
	Queries  int `json:"queries"`
	Timeouts int `json:"timeouts"`
	Reopts   int `json:"reopts"`

	Phases    []PhaseSummary      `json:"phases"`
	Operators []OpAggregate       `json:"operators"`
	Events    []ReoptEvent        `json:"reopt_events,omitempty"`
	CE        []CEEstimatorReport `json:"ce_evaluation,omitempty"`
	Metrics   MetricsSnapshot     `json:"metrics"`
}

// Report aggregates the published query traces, the CE evaluation, and the
// metrics registry into one serializable report. Returns nil on a nil
// observer.
func (o *Observer) Report() *Report {
	if o == nil {
		return nil
	}
	traces := o.Traces()
	rep := &Report{Queries: len(traces)}

	phases := []struct {
		name string
		get  func(*QueryTrace) time.Duration
	}{
		{"plan", func(t *QueryTrace) time.Duration { return t.PlanTime }},
		{"infer", func(t *QueryTrace) time.Duration { return t.InferTime }},
		{"reopt", func(t *QueryTrace) time.Duration { return t.ReoptTime }},
		{"exec", func(t *QueryTrace) time.Duration { return t.ExecTime }},
		{"total", func(t *QueryTrace) time.Duration {
			return t.PlanTime + t.InferTime + t.ReoptTime + t.ExecTime
		}},
	}
	phaseHists := make([]*Histogram, len(phases))
	for i := range phaseHists {
		phaseHists[i] = &Histogram{}
	}

	type opAgg struct {
		count int
		rows  int64
		wall  time.Duration
		qerr  *Histogram
	}
	ops := make(map[string]*opAgg)

	for _, t := range traces {
		if t.TimedOut {
			rep.Timeouts++
		}
		for i, ph := range phases {
			phaseHists[i].Observe(ph.get(t).Seconds())
		}
		for _, ev := range t.Events {
			if ev.Triggered {
				rep.Reopts++
			}
			rep.Events = append(rep.Events, ev)
		}
		for _, rd := range t.Rounds {
			for _, s := range rd.Ops {
				a, ok := ops[s.Op]
				if !ok {
					a = &opAgg{qerr: &Histogram{}}
					ops[s.Op] = a
				}
				a.count++
				a.rows += s.Rows
				a.wall += s.Wall
				if q := s.QError(); q > 0 {
					a.qerr.Observe(q)
				}
			}
		}
	}

	for i, ph := range phases {
		rep.Phases = append(rep.Phases, PhaseSummary{Phase: ph.name, Seconds: phaseHists[i].Summary()})
	}
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := ops[name]
		rep.Operators = append(rep.Operators, OpAggregate{
			Op: name, Count: a.count, Rows: a.rows,
			WallSeconds: a.wall.Seconds(), QError: a.qerr.Summary(),
		})
	}
	rep.CE = o.CE().Report()
	rep.Metrics = o.Registry().Snapshot()
	return rep
}
