package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/lpce-db/lpce/internal/query"
)

// ceKey identifies one estimated sub-plan: a query fingerprint plus the
// relation-subset mask, matching the estimate cache's key.
type ceKey struct {
	fp   uint64
	mask query.BitSet
}

// CERecorder captures every EstimateSubset call of one estimator — the
// "record all intermediate CE results" half of a CE-evaluation framework.
// True cardinalities are held by the owning CEEval (they are
// estimator-independent) and joined in at report time. Goroutine-safe; a
// nil recorder ignores all operations.
type CERecorder struct {
	estimator string
	// limit, when > 0, caps the tracked keys: estimates for new keys beyond
	// it are dropped (existing keys still overwrite), so a long-running
	// process keeps a bounded evaluation table instead of growing one entry
	// per distinct sub-plan forever.
	limit   atomic.Int64
	dropped atomic.Int64

	mu   sync.Mutex
	ests map[ceKey]float64
}

// RecordEstimate stores the estimate an estimator produced for one
// (query, subset) pair. Repeated estimates of the same pair overwrite;
// every in-repo estimator is deterministic per pair, so the last value
// equals the first.
func (r *CERecorder) RecordEstimate(fingerprint uint64, mask query.BitSet, est float64) {
	if r == nil {
		return
	}
	k := ceKey{fingerprint, mask}
	lim := r.limit.Load()
	r.mu.Lock()
	if _, ok := r.ests[k]; !ok && lim > 0 && int64(len(r.ests)) >= lim {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	r.ests[k] = est
	r.mu.Unlock()
}

// Len returns the number of recorded estimates.
func (r *CERecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ests)
}

// CEEval coordinates CE evaluation across estimators: one CERecorder per
// estimator name, plus the shared pool of true cardinalities observed
// during execution. Goroutine-safe; a nil CEEval hands out nil recorders
// and ignores true-cardinality reports.
type CEEval struct {
	mu    sync.Mutex
	recs  map[string]*CERecorder
	trues map[ceKey]float64
	// limit, when > 0, caps trues and every recorder's estimate table; see
	// SetCap.
	limit int64
}

// NewCEEval returns an empty evaluator.
func NewCEEval() *CEEval {
	return &CEEval{recs: make(map[string]*CERecorder), trues: make(map[ceKey]float64)}
}

// Recorder returns the recorder for the named estimator, creating it on
// first use. Returns nil on a nil evaluator.
func (e *CEEval) Recorder(estimator string) *CERecorder {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.recs[estimator]
	if !ok {
		r = &CERecorder{estimator: estimator, ests: make(map[ceKey]float64)}
		r.limit.Store(e.limit)
		e.recs[estimator] = r
	}
	return r
}

// SetCap bounds the evaluation tables: at most n true cardinalities and n
// estimates per recorder are tracked; further new keys are dropped (existing
// keys still update). 0 restores unbounded growth. Long-running processes
// set a cap so CE evaluation samples the stream instead of indexing it.
func (e *CEEval) SetCap(n int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.limit = int64(n)
	for _, r := range e.recs {
		r.limit.Store(int64(n))
	}
	e.mu.Unlock()
}

// RecordTrue stores the exact cardinality observed for one (query, subset)
// pair. True cardinalities are shared by all estimators' reports.
func (e *CEEval) RecordTrue(fingerprint uint64, mask query.BitSet, card float64) {
	if e == nil {
		return
	}
	k := ceKey{fingerprint, mask}
	e.mu.Lock()
	if _, ok := e.trues[k]; !ok && e.limit > 0 && int64(len(e.trues)) >= e.limit {
		e.mu.Unlock()
		return
	}
	e.trues[k] = card
	e.mu.Unlock()
}

// TrueCount returns the number of recorded true cardinalities.
func (e *CEEval) TrueCount() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.trues)
}

// CESizeRow is the q-error distribution of one estimator over the sub-plans
// of one join-subset size (size = number of base relations joined).
type CESizeRow struct {
	Size    int     `json:"size"`
	Samples int     `json:"samples"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Max     float64 `json:"max"`
}

// CEEstimatorReport is one estimator's q-error distribution broken down by
// join-subset size, over every recorded estimate whose true cardinality was
// observed.
type CEEstimatorReport struct {
	Estimator string      `json:"estimator"`
	Matched   int         `json:"matched"`   // estimates joined with a true card
	Unmatched int         `json:"unmatched"` // estimates never executed
	Sizes     []CESizeRow `json:"sizes"`
}

// Report joins each estimator's recorded estimates against the observed
// true cardinalities and summarises q-error by subset size. Estimators are
// ordered by name; sizes ascending.
func (e *CEEval) Report() []CEEstimatorReport {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.recs))
	for name := range e.recs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CEEstimatorReport, 0, len(names))
	for _, name := range names {
		rec := e.recs[name]
		rep := CEEstimatorReport{Estimator: name}
		bySize := make(map[int][]float64)
		rec.mu.Lock()
		for k, est := range rec.ests {
			actual, ok := e.trues[k]
			if !ok {
				rep.Unmatched++
				continue
			}
			rep.Matched++
			size := k.mask.Count()
			bySize[size] = append(bySize[size], QError(actual, est))
		}
		rec.mu.Unlock()
		sizes := make([]int, 0, len(bySize))
		for s := range bySize {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		for _, s := range sizes {
			qs := bySize[s]
			sort.Float64s(qs)
			rep.Sizes = append(rep.Sizes, CESizeRow{
				Size:    s,
				Samples: len(qs),
				P50:     quantile(qs, 0.50),
				P90:     quantile(qs, 0.90),
				P99:     quantile(qs, 0.99),
				Max:     qs[len(qs)-1],
			})
		}
		out = append(out, rep)
	}
	return out
}
