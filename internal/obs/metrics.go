// Package obs is the repository's cross-cutting observability layer: a
// lightweight metrics registry (counters, gauges, histograms), a structured
// trace of query execution (per-operator runtime stats, re-optimization
// events), and a CE-evaluation recorder that joins every cardinality
// estimate against the true cardinality observed at runtime — the approach
// of TiDB's CE-evaluation framework proposal, applied to this engine.
//
// Every recording entry point is nil-safe: calling a method on a nil
// *Counter, *Histogram, *ExecTrace, *QueryTrace, *CERecorder, or through a
// nil *Registry/*Observer is a no-op that performs no allocation. Hot paths
// therefore record unconditionally; disabling observability is simply not
// wiring it up, and costs nothing.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing (resettable) atomic counter. The
// zero value is ready to use; a nil Counter ignores all operations.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c == nil {
		return
	}
	c.v.Store(0)
}

// Gauge is an atomically-updated float64 value. The zero value is ready to
// use; a nil Gauge ignores all operations.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histogramCap bounds the retained samples of one histogram. When full the
// histogram halves its sample set and doubles its sampling stride, so
// long-running processes keep a uniform thinning of the stream instead of
// growing without bound. Count, max, and sum stay exact.
const histogramCap = 1 << 14

// Histogram accumulates float64 observations and reports quantiles. It is
// goroutine-safe; a nil Histogram ignores all operations.
type Histogram struct {
	mu     sync.Mutex
	vals   []float64
	stride int64 // record every stride-th observation
	seen   int64 // observations since the last recorded one
	count  int64
	sum    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if h.count == 1 || v > h.max {
		h.max = v
	}
	if h.stride == 0 {
		h.stride = 1
	}
	h.seen++
	if h.seen >= h.stride {
		h.seen = 0
		h.vals = append(h.vals, v)
		if len(h.vals) >= histogramCap {
			keep := h.vals[:0]
			for i := 1; i < len(h.vals); i += 2 {
				keep = append(keep, h.vals[i])
			}
			h.vals = keep
			h.stride *= 2
		}
	}
	h.mu.Unlock()
}

// HistSummary is the serializable summary of a histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary snapshots the histogram. All fields are zero when nothing was
// observed.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSummary{Count: h.count, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	if len(h.vals) > 0 {
		sorted := append([]float64(nil), h.vals...)
		sort.Float64s(sorted)
		s.P50 = quantile(sorted, 0.50)
		s.P90 = quantile(sorted, 0.90)
		s.P99 = quantile(sorted, 0.99)
	}
	return s
}

// quantile returns the q-th quantile of sorted values by linear
// interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Registry interns named counters, gauges, and histograms. Lookups on a nil
// Registry return nil instruments, whose operations are no-ops — callers
// can hold a nil registry and record unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is the serializable state of a registry.
type MetricsSnapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]float64     `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. An empty snapshot is
// returned for a nil registry.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSummary, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Summary()
		}
	}
	return s
}
