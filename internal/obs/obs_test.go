package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/lpce-db/lpce/internal/query"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := r.Counter("c").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if r.Gauge("g").Value() != 2.5 {
		t.Fatal("gauge round-trip failed")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Summary()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("count=%d max=%v", s.Count, s.Max)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P99 < 95 || s.P99 > 100 {
		t.Fatalf("p99 = %v", s.P99)
	}
}

func TestHistogramDownsamples(t *testing.T) {
	h := &Histogram{}
	n := histogramCap * 4
	for i := 0; i < n; i++ {
		h.Observe(float64(i))
	}
	if len(h.vals) >= histogramCap {
		t.Fatalf("histogram retained %d samples, cap %d", len(h.vals), histogramCap)
	}
	s := h.Summary()
	if s.Count != int64(n) || s.Max != float64(n-1) {
		t.Fatalf("count=%d max=%v", s.Count, s.Max)
	}
	mid := float64(n) / 2
	if s.P50 < mid*0.9 || s.P50 > mid*1.1 {
		t.Fatalf("p50 = %v, want ~%v", s.P50, mid)
	}
}

// TestNilSafety: every recording entry point must be a no-op through nil
// receivers, so hot paths record unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if s := r.Snapshot(); s.Counters != nil {
		t.Fatal("nil registry snapshot not empty")
	}
	var c *Counter
	c.Add(1)
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var et *ExecTrace
	et.AddOp(OpStats{})
	if et.ByMask(query.NewBitSet()) != nil {
		t.Fatal("nil exec trace")
	}
	var qt *QueryTrace
	qt.AddEvent(ReoptEvent{})
	qt.AttachPlanDiff("x")
	if qt.NewRound() != nil || qt.FinalRound() != nil {
		t.Fatal("nil query trace")
	}
	var o *Observer
	o.Observe(qt)
	if o.Registry() != nil || o.CE() != nil || o.NewQueryTrace(1, "x") != nil || o.Report() != nil {
		t.Fatal("nil observer")
	}
	var rec *CERecorder
	rec.RecordEstimate(1, query.NewBitSet(), 1)
	if rec.Len() != 0 {
		t.Fatal("nil recorder")
	}
	var ce *CEEval
	ce.RecordTrue(1, query.NewBitSet(), 1)
	if ce.Recorder("x") != nil || ce.Report() != nil || ce.TrueCount() != 0 {
		t.Fatal("nil CE eval")
	}
}

// TestDisabledRecordingAllocFree asserts the disabled (nil-receiver) path
// allocates nothing, which is what lets the executor and the controller
// record unconditionally.
func TestDisabledRecordingAllocFree(t *testing.T) {
	var r *Registry
	var et *ExecTrace
	var qt *QueryTrace
	var ce *CEEval
	allocs := testing.AllocsPerRun(1000, func() {
		r.Counter("x").Add(1)
		r.Histogram("y").Observe(1)
		et.AddOp(OpStats{Op: "HashJoin", Rows: 1})
		qt.AddEvent(ReoptEvent{})
		ce.RecordTrue(1, query.NewBitSet(), 1)
		ce.Recorder("x").RecordEstimate(1, query.NewBitSet(), 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates %.1f per op, want 0", allocs)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Histogram("lat").Observe(float64(i))
				r.Gauge("g").Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if s := r.Histogram("lat").Summary(); s.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Count)
	}
}

func TestQueryTraceRoundsAndEvents(t *testing.T) {
	o := NewObserver()
	qt := o.NewQueryTrace(42, "histogram")
	r0 := qt.NewRound()
	r0.AddOp(OpStats{Op: "SeqScan", Mask: query.NewBitSet().Set(0), EstRows: 10, ActualRows: 12, Rows: 12})
	qt.AddEvent(ReoptEvent{Op: "HashJoin", QError: 80, Triggered: true})
	r1 := qt.NewRound()
	r1.AddOp(OpStats{Op: "MatScan", Mask: query.NewBitSet().Set(0).Set(1), EstRows: 12, ActualRows: 12})
	qt.AttachPlanDiff("2/5 operators changed")
	qt.ExecTime = time.Millisecond
	o.Observe(qt)

	if len(qt.Rounds) != 2 || qt.Rounds[0].Round != 0 || qt.Rounds[1].Round != 1 {
		t.Fatalf("rounds mis-numbered: %+v", qt.Rounds)
	}
	if qt.Events[0].Round != 0 {
		t.Fatalf("event round = %d, want 0", qt.Events[0].Round)
	}
	if qt.Events[0].PlanDiff != "2/5 operators changed" {
		t.Fatalf("plan diff not attached: %+v", qt.Events[0])
	}
	if got := qt.FinalRound().ByMask(query.NewBitSet().Set(0).Set(1)); got == nil || got.Op != "MatScan" {
		t.Fatalf("ByMask lookup failed: %+v", got)
	}

	rep := o.Report()
	if rep.Queries != 1 || rep.Reopts != 1 {
		t.Fatalf("report queries=%d reopts=%d", rep.Queries, rep.Reopts)
	}
	if len(rep.Operators) != 2 {
		t.Fatalf("operator aggregates = %+v", rep.Operators)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}

func TestCEEvalReport(t *testing.T) {
	ce := NewCEEval()
	rec := ce.Recorder("histogram")
	m1 := query.NewBitSet().Set(0)
	m2 := query.NewBitSet().Set(0).Set(1)
	m3 := query.NewBitSet().Set(2)
	rec.RecordEstimate(1, m1, 10)
	rec.RecordEstimate(1, m2, 100)
	rec.RecordEstimate(1, m3, 7) // never executed -> unmatched
	ce.RecordTrue(1, m1, 20)     // q-error 2 at size 1
	ce.RecordTrue(1, m2, 1000)   // q-error 10 at size 2

	reps := ce.Report()
	if len(reps) != 1 {
		t.Fatalf("reports = %+v", reps)
	}
	rep := reps[0]
	if rep.Estimator != "histogram" || rep.Matched != 2 || rep.Unmatched != 1 {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Sizes) != 2 || rep.Sizes[0].Size != 1 || rep.Sizes[1].Size != 2 {
		t.Fatalf("sizes: %+v", rep.Sizes)
	}
	if rep.Sizes[0].Max != 2 || rep.Sizes[1].Max != 10 {
		t.Fatalf("q-errors: %+v", rep.Sizes)
	}
	// A second estimator shares the same true cards.
	ce.Recorder("lpce-i").RecordEstimate(1, m1, 20)
	reps = ce.Report()
	if len(reps) != 2 || reps[1].Estimator != "lpce-i" || reps[1].Sizes[0].Max != 1 {
		t.Fatalf("second estimator: %+v", reps)
	}
}

func TestQErrorClamps(t *testing.T) {
	if q := QError(0, 0); q != 1 {
		t.Fatalf("QError(0,0) = %v", q)
	}
	if q := QError(100, 10); q != 10 {
		t.Fatalf("QError(100,10) = %v", q)
	}
	if q := QError(10, 100); q != 10 {
		t.Fatalf("QError(10,100) = %v", q)
	}
}
