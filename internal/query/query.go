// Package query defines the select-project-equijoin-aggregate query
// representation used across the repository (paper §3): COUNT(*) queries
// over a set of relations connected by equi-join conditions, with filter
// predicates on individual columns.
package query

import (
	"fmt"
	"sort"
	"strings"

	"github.com/lpce-db/lpce/internal/catalog"
)

// Op is a filter-predicate comparison operator.
type Op int

// Supported predicate operators. OpIn models the paper's "complex
// predicates" (IN lists); string LIKE predicates are represented as range
// predicates over dictionary-encoded codes, as the paper does for MSCN and
// DeepDB.
const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpIn
	numOps
)

// NumOps is the size of the operator one-hot vocabulary in feature encoding.
const NumOps = int(numOps)

func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is one filter condition on a single column.
type Predicate struct {
	Col     *catalog.Column
	Op      Op
	Operand int64
	// InSet holds the operand list for OpIn; Operand is unused then.
	InSet []int64
}

// Eval reports whether value v satisfies the predicate.
func (p Predicate) Eval(v int64) bool {
	switch p.Op {
	case OpEQ:
		return v == p.Operand
	case OpNE:
		return v != p.Operand
	case OpLT:
		return v < p.Operand
	case OpLE:
		return v <= p.Operand
	case OpGT:
		return v > p.Operand
	case OpGE:
		return v >= p.Operand
	case OpIn:
		for _, x := range p.InSet {
			if v == x {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("query: unknown op %d", int(p.Op)))
	}
}

func (p Predicate) String() string {
	if p.Op == OpIn {
		parts := make([]string, len(p.InSet))
		for i, x := range p.InSet {
			parts[i] = fmt.Sprint(x)
		}
		return fmt.Sprintf("%s IN (%s)", p.Col.QualifiedName(), strings.Join(parts, ","))
	}
	return fmt.Sprintf("%s %s %d", p.Col.QualifiedName(), p.Op, p.Operand)
}

// Join is one equi-join condition between two columns of different tables.
type Join struct {
	Left, Right *catalog.Column
}

func (j Join) String() string {
	return j.Left.QualifiedName() + " = " + j.Right.QualifiedName()
}

// Query is a COUNT(*) select-project-equijoin query. A Query is immutable
// after New and safe for concurrent use.
type Query struct {
	Tables []*catalog.Table
	Joins  []Join
	Preds  []Predicate

	tableIdx map[int]int // catalog table ID -> local index
	fp       uint64      // structural fingerprint, frozen at construction
}

// New builds a query and freezes its table ordering (sorted by catalog ID so
// bitmask subsets are canonical).
func New(tables []*catalog.Table, joins []Join, preds []Predicate) *Query {
	ts := append([]*catalog.Table(nil), tables...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	q := &Query{Tables: ts, Joins: joins, Preds: preds, tableIdx: make(map[int]int)}
	for i, t := range ts {
		q.tableIdx[t.ID] = i
	}
	for _, j := range joins {
		q.mustHave(j.Left.Table)
		q.mustHave(j.Right.Table)
	}
	for _, p := range preds {
		q.mustHave(p.Col.Table)
	}
	q.fp = q.computeFingerprint()
	return q
}

// Fingerprint returns a stable structural hash of the query (tables, join
// conditions, predicates with operands). Two queries over the same catalog
// with identical structure share a fingerprint across processes and runs,
// which is what keys the shared cardinality-estimate cache.
func (q *Query) Fingerprint() uint64 { return q.fp }

func (q *Query) computeFingerprint() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	mix := func(v uint64) {
		v *= 0xbf58476d1ce4e5b9
		v ^= v >> 27
		h = (h ^ v) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	for _, t := range q.Tables {
		mix(uint64(t.ID))
	}
	mix(uint64(len(q.Joins)))
	for _, j := range q.Joins {
		mix(uint64(j.Left.GlobalID))
		mix(uint64(j.Right.GlobalID))
	}
	mix(uint64(len(q.Preds)))
	for _, p := range q.Preds {
		mix(uint64(p.Col.GlobalID))
		mix(uint64(p.Op))
		mix(uint64(p.Operand))
		mix(uint64(len(p.InSet)))
		for _, v := range p.InSet {
			mix(uint64(v))
		}
	}
	return h
}

func (q *Query) mustHave(t *catalog.Table) {
	if _, ok := q.tableIdx[t.ID]; !ok {
		panic(fmt.Sprintf("query: table %s referenced but not in FROM list", t.Name))
	}
}

// NumJoins returns the number of join conditions (the paper's query
// complexity measure; a "Join-eight" query has 8 joins over 9 relations).
func (q *Query) NumJoins() int { return len(q.Joins) }

// TableIndex returns the local index of t within the query, or -1. Identity
// is by pointer, so same-ID tables from a different schema do not alias.
func (q *Query) TableIndex(t *catalog.Table) int {
	if i, ok := q.tableIdx[t.ID]; ok && q.Tables[i] == t {
		return i
	}
	return -1
}

// PredsOn returns the predicates filtering table t.
func (q *Query) PredsOn(t *catalog.Table) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Col.Table == t {
			out = append(out, p)
		}
	}
	return out
}

// JoinsWithin returns the join conditions whose both sides fall inside the
// table subset mask.
func (q *Query) JoinsWithin(mask BitSet) []Join {
	var out []Join
	for _, j := range q.Joins {
		li := q.TableIndex(j.Left.Table)
		ri := q.TableIndex(j.Right.Table)
		if mask.Has(li) && mask.Has(ri) {
			out = append(out, j)
		}
	}
	return out
}

// JoinsBetween returns the join conditions with one side in left and the
// other in right.
func (q *Query) JoinsBetween(left, right BitSet) []Join {
	var out []Join
	for _, j := range q.Joins {
		li := q.TableIndex(j.Left.Table)
		ri := q.TableIndex(j.Right.Table)
		if (left.Has(li) && right.Has(ri)) || (left.Has(ri) && right.Has(li)) {
			out = append(out, j)
		}
	}
	return out
}

// Connected reports whether the tables in mask form a connected subgraph
// under the query's join conditions.
func (q *Query) Connected(mask BitSet) bool {
	if mask.Count() <= 1 {
		return mask.Count() == 1
	}
	start := mask.First()
	frontier := NewBitSet().Set(start)
	for {
		grown := frontier
		for _, j := range q.Joins {
			li := q.TableIndex(j.Left.Table)
			ri := q.TableIndex(j.Right.Table)
			if !mask.Has(li) || !mask.Has(ri) {
				continue
			}
			if grown.Has(li) {
				grown = grown.Set(ri)
			}
			if grown.Has(ri) {
				grown = grown.Set(li)
			}
		}
		if grown == frontier {
			break
		}
		frontier = grown
	}
	return frontier == mask
}

// AllTablesMask returns the mask covering every table of the query.
func (q *Query) AllTablesMask() BitSet {
	m := NewBitSet()
	for i := range q.Tables {
		m = m.Set(i)
	}
	return m
}

// SQL renders the query as a SQL string for logs and examples.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT COUNT(*) FROM ")
	names := make([]string, len(q.Tables))
	for i, t := range q.Tables {
		names[i] = t.Name
	}
	b.WriteString(strings.Join(names, ", "))
	var conds []string
	for _, j := range q.Joins {
		conds = append(conds, j.String())
	}
	for _, p := range q.Preds {
		conds = append(conds, p.String())
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	return b.String()
}

// BitSet is a subset of a query's tables by local index. It supports up to
// 32 relations, far beyond the paper's 9-relation maximum.
type BitSet uint32

// NewBitSet returns the empty set.
func NewBitSet() BitSet { return 0 }

// Set returns the set with bit i added.
func (b BitSet) Set(i int) BitSet { return b | 1<<uint(i) }

// Clear returns the set with bit i removed.
func (b BitSet) Clear(i int) BitSet { return b &^ (1 << uint(i)) }

// Has reports whether bit i is present.
func (b BitSet) Has(i int) bool { return b&(1<<uint(i)) != 0 }

// Union returns b ∪ o.
func (b BitSet) Union(o BitSet) BitSet { return b | o }

// Intersects reports whether b and o share any bit.
func (b BitSet) Intersects(o BitSet) bool { return b&o != 0 }

// Count returns the number of set bits.
func (b BitSet) Count() int {
	n := 0
	for x := b; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// First returns the lowest set bit index, or -1 for the empty set.
func (b BitSet) First() int {
	if b == 0 {
		return -1
	}
	i := 0
	for !b.Has(i) {
		i++
	}
	return i
}

// Indices returns the set bits in ascending order.
func (b BitSet) Indices() []int {
	var out []int
	for i := 0; i < 32; i++ {
		if b.Has(i) {
			out = append(out, i)
		}
	}
	return out
}
