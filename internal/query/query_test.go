package query

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/lpce-db/lpce/internal/catalog"
)

func testSchema() *catalog.Schema {
	s := catalog.NewSchema()
	a := s.AddTable("a", catalog.PK("id"), catalog.Attr("x"))
	b := s.AddTable("b", catalog.FK("a_id", a.Column("id")), catalog.Attr("y"))
	s.AddTable("c", catalog.FK("b_y", b.Column("y")))
	return s
}

func chainQuery(s *catalog.Schema) *Query {
	a, b, c := s.Table("a"), s.Table("b"), s.Table("c")
	return New(
		[]*catalog.Table{c, a, b}, // deliberately unsorted
		[]Join{
			{Left: b.Column("a_id"), Right: a.Column("id")},
			{Left: c.Column("b_y"), Right: b.Column("y")},
		},
		[]Predicate{{Col: a.Column("x"), Op: OpGT, Operand: 5}},
	)
}

func TestQueryTableOrderCanonical(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	for i := 1; i < len(q.Tables); i++ {
		if q.Tables[i-1].ID >= q.Tables[i].ID {
			t.Fatal("tables not sorted by catalog ID")
		}
	}
	if q.NumJoins() != 2 {
		t.Fatalf("joins = %d", q.NumJoins())
	}
}

func TestTableIndex(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	for i, tab := range q.Tables {
		if q.TableIndex(tab) != i {
			t.Fatalf("TableIndex(%s) = %d, want %d", tab.Name, q.TableIndex(tab), i)
		}
	}
	other := catalog.NewSchema().AddTable("z", catalog.PK("id"))
	if q.TableIndex(other) != -1 {
		t.Fatal("foreign table should map to -1")
	}
}

func TestPredsOn(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	a := s.Table("a")
	if got := q.PredsOn(a); len(got) != 1 || got[0].Col.Name != "x" {
		t.Fatalf("PredsOn(a) = %v", got)
	}
	if got := q.PredsOn(s.Table("b")); len(got) != 0 {
		t.Fatalf("PredsOn(b) = %v", got)
	}
}

func TestJoinsWithinBetween(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	ai := q.TableIndex(s.Table("a"))
	bi := q.TableIndex(s.Table("b"))
	ci := q.TableIndex(s.Table("c"))

	ab := NewBitSet().Set(ai).Set(bi)
	if got := q.JoinsWithin(ab); len(got) != 1 {
		t.Fatalf("JoinsWithin(ab) = %v", got)
	}
	full := ab.Set(ci)
	if got := q.JoinsWithin(full); len(got) != 2 {
		t.Fatalf("JoinsWithin(full) = %v", got)
	}
	if got := q.JoinsBetween(NewBitSet().Set(ai), NewBitSet().Set(ci)); len(got) != 0 {
		t.Fatalf("a and c share no direct join, got %v", got)
	}
	if got := q.JoinsBetween(ab, NewBitSet().Set(ci)); len(got) != 1 {
		t.Fatalf("ab-c should share 1 join, got %v", got)
	}
}

func TestConnected(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	ai := q.TableIndex(s.Table("a"))
	bi := q.TableIndex(s.Table("b"))
	ci := q.TableIndex(s.Table("c"))
	if !q.Connected(q.AllTablesMask()) {
		t.Fatal("full chain should be connected")
	}
	if q.Connected(NewBitSet().Set(ai).Set(ci)) {
		t.Fatal("a-c without b is disconnected")
	}
	if !q.Connected(NewBitSet().Set(ai)) {
		t.Fatal("singleton is connected")
	}
	if q.Connected(NewBitSet()) {
		t.Fatal("empty set is not connected")
	}
	if !q.Connected(NewBitSet().Set(bi).Set(ci)) {
		t.Fatal("b-c should be connected")
	}
}

func TestPredicateEval(t *testing.T) {
	cases := []struct {
		op   Op
		arg  int64
		v    int64
		want bool
	}{
		{OpEQ, 5, 5, true}, {OpEQ, 5, 6, false},
		{OpNE, 5, 6, true}, {OpNE, 5, 5, false},
		{OpLT, 5, 4, true}, {OpLT, 5, 5, false},
		{OpLE, 5, 5, true}, {OpLE, 5, 6, false},
		{OpGT, 5, 6, true}, {OpGT, 5, 5, false},
		{OpGE, 5, 5, true}, {OpGE, 5, 4, false},
	}
	for _, c := range cases {
		p := Predicate{Op: c.op, Operand: c.arg}
		if p.Eval(c.v) != c.want {
			t.Fatalf("%v %d on %d: got %v", c.op, c.arg, c.v, !c.want)
		}
	}
	in := Predicate{Op: OpIn, InSet: []int64{1, 3, 5}}
	if !in.Eval(3) || in.Eval(2) {
		t.Fatal("IN evaluation broken")
	}
}

func TestSQLRendering(t *testing.T) {
	s := testSchema()
	q := chainQuery(s)
	sql := q.SQL()
	for _, frag := range []string{"SELECT COUNT(*)", "FROM a, b, c", "b.a_id = a.id", "a.x > 5"} {
		if !strings.Contains(sql, frag) {
			t.Fatalf("SQL %q missing %q", sql, frag)
		}
	}
}

func TestNewPanicsOnForeignReference(t *testing.T) {
	s := testSchema()
	a, b := s.Table("a"), s.Table("b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when join references absent table")
		}
	}()
	New([]*catalog.Table{a}, []Join{{Left: b.Column("a_id"), Right: a.Column("id")}}, nil)
}

func TestBitSetBasics(t *testing.T) {
	b := NewBitSet().Set(1).Set(4)
	if !b.Has(1) || !b.Has(4) || b.Has(0) {
		t.Fatal("Has broken")
	}
	if b.Count() != 2 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.First() != 1 {
		t.Fatalf("First = %d", b.First())
	}
	if NewBitSet().First() != -1 {
		t.Fatal("First of empty should be -1")
	}
	if got := b.Indices(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("Indices = %v", got)
	}
	if b.Clear(1).Has(1) {
		t.Fatal("Clear broken")
	}
	if !b.Intersects(NewBitSet().Set(4)) || b.Intersects(NewBitSet().Set(9)) {
		t.Fatal("Intersects broken")
	}
}

func TestBitSetUnionCountProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := BitSet(a), BitSet(b)
		u := x.Union(y)
		// |A ∪ B| = |A| + |B| − |A ∩ B|
		inter := 0
		for i := 0; i < 16; i++ {
			if x.Has(i) && y.Has(i) {
				inter++
			}
		}
		return u.Count() == x.Count()+y.Count()-inter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
