// Package lpce is the public API of the LPCE reproduction: a learning-based
// progressive cardinality estimator (SIGMOD 2023) together with the complete
// relational engine substrate it runs in — synthetic IMDB-like data
// generation, a dynamic-programming query optimizer, a pipelined executor
// with re-optimization checkpoints, and every baseline estimator the paper
// evaluates against.
//
// # Quick start
//
//	db := lpce.GenerateDatabase(lpce.DataConfig{Titles: 2000, Seed: 1})
//	gen := lpce.NewWorkloadGenerator(db, 2)
//
//	// collect training plans with true per-operator cardinalities
//	samples, _ := lpce.CollectSamples(db, lpce.NewHistogramEstimator(db),
//		gen.QueriesRange(300, 3, 6), 100_000_000)
//
//	enc := lpce.NewEncoder(db.Schema)
//	logMax := lpce.MaxLogCard(samples)
//	model := lpce.TrainLPCEI(lpce.LPCEIConfig{}, enc, samples, logMax)
//	refiner := lpce.TrainRefiner(lpce.RefinerConfig{}, enc, db, samples, logMax)
//
//	// execute end to end with progressive re-optimization
//	eng := lpce.NewEngine(db)
//	res, err := eng.Execute(gen.Query(8), lpce.EngineConfig{
//		Estimator: lpce.NewTreeEstimator("lpce-i", model.Model, enc),
//		Refiner:   refiner,
//	})
//
// The subpackage layout mirrors the paper: the initial estimation model
// LPCE-I (§4) and refinement model LPCE-R (§5) live behind TrainLPCEI and
// TrainRefiner; the engine integration (§6) behind Engine; and the full
// evaluation (§7) behind RunExperiments.
package lpce

import (
	"io"

	"github.com/lpce-db/lpce/internal/cardest"
	"github.com/lpce-db/lpce/internal/catalog"
	"github.com/lpce-db/lpce/internal/core"
	"github.com/lpce-db/lpce/internal/datagen"
	"github.com/lpce-db/lpce/internal/encode"
	"github.com/lpce-db/lpce/internal/engine"
	"github.com/lpce-db/lpce/internal/experiments"
	"github.com/lpce-db/lpce/internal/histogram"
	"github.com/lpce-db/lpce/internal/query"
	"github.com/lpce-db/lpce/internal/reopt"
	"github.com/lpce-db/lpce/internal/storage"
	"github.com/lpce-db/lpce/internal/treenn"
	"github.com/lpce-db/lpce/internal/workload"
)

// Data and schema.
type (
	// DataConfig sizes the synthetic IMDB-like database.
	DataConfig = datagen.Config
	// Database is an in-memory column store plus its schema.
	Database = storage.Database
	// StorageTable is one relation's columnar data inside a Database.
	StorageTable = storage.Table
	// Query is a COUNT(*) select-project-equijoin query.
	Query = query.Query
	// Predicate is one filter condition.
	Predicate = query.Predicate
	// Join is one equi-join condition.
	Join = query.Join
	// BitSet addresses subsets of a query's relations.
	BitSet = query.BitSet
)

// GenerateDatabase builds the synthetic database deterministically.
func GenerateDatabase(cfg DataConfig) *Database { return datagen.Generate(cfg) }

// NewWorkloadGenerator returns a deterministic random-query generator over
// the database's join graph (the paper's §7.1 workload recipe).
func NewWorkloadGenerator(db *Database, seed int64) *workload.Generator {
	return workload.NewGenerator(db, seed)
}

// Estimation.
type (
	// Estimator estimates the result cardinality of joining a relation
	// subset; every estimator in the repository implements it.
	Estimator = cardest.Estimator
	// Encoder featurizes plan nodes (paper §4.1).
	Encoder = encode.Encoder
	// Sample is one training example: a plan with per-node true
	// cardinalities.
	Sample = core.Sample
	// TrainConfig controls training of one tree model.
	TrainConfig = core.TrainConfig
	// LPCEIConfig assembles the LPCE-I pipeline (teacher + distillation).
	LPCEIConfig = core.LPCEIConfig
	// LPCEI is the trained initial estimation model.
	LPCEI = core.LPCEI
	// RefinerConfig controls LPCE-R training.
	RefinerConfig = core.RefinerConfig
	// Refiner is the trained progressive refinement model.
	Refiner = core.Refiner
	// TreeEstimator adapts a tree model to the Estimator interface.
	TreeEstimator = core.TreeEstimator
	// TreeModel is the SRU/LSTM tree backbone of Figure 6.
	TreeModel = treenn.TreeModel
)

// Schema aliases the catalog schema (tables, columns, join graph).
type Schema = catalog.Schema

// NewEncoder builds the feature encoder for a schema.
func NewEncoder(s *Schema) *Encoder { return encode.NewEncoder(s) }

// NewHistogramEstimator returns the PostgreSQL-style statistics baseline.
func NewHistogramEstimator(db *Database) Estimator { return histogram.NewEstimator(db) }

// CollectSamples harvests training plans with true cardinalities (§4.1's
// sample collection step); budget bounds per-query executor work.
func CollectSamples(db *Database, est Estimator, queries []*Query, budget int64) ([]Sample, core.CollectStats) {
	return core.CollectSamples(db, est, queries, budget)
}

// MaxLogCard returns the log-cardinality normalization constant of a
// training set.
func MaxLogCard(samples []Sample) float64 { return core.MaxLogCard(samples) }

// TrainLPCEI runs the full LPCE-I pipeline: teacher training plus
// knowledge-distillation compression (paper §4).
func TrainLPCEI(cfg LPCEIConfig, enc *Encoder, samples []Sample, logMax float64) *LPCEI {
	return core.TrainLPCEI(cfg, enc, samples, logMax)
}

// TrainRefiner runs LPCE-R's two-stage training (paper §5).
func TrainRefiner(cfg RefinerConfig, enc *Encoder, db *Database, samples []Sample, logMax float64) *Refiner {
	return core.TrainRefiner(cfg, enc, db, samples, logMax)
}

// NewTreeEstimator adapts a trained tree model to the optimizer.
func NewTreeEstimator(label string, m *TreeModel, enc *Encoder) *TreeEstimator {
	return &TreeEstimator{Label: label, Model: m, Enc: enc}
}

// Execution.
type (
	// Engine drives end-to-end query execution (paper §6).
	Engine = engine.Engine
	// EngineConfig selects the estimator stack for a run.
	EngineConfig = engine.Config
	// Result is the outcome and time decomposition of one execution.
	Result = engine.Result
	// ReoptPolicy is the re-optimization trigger rule (threshold 50, max 3
	// in the paper).
	ReoptPolicy = reopt.Policy
)

// NewEngine returns an engine over db.
func NewEngine(db *Database) *Engine { return engine.New(db) }

// DefaultReoptPolicy returns the paper's trigger settings.
func DefaultReoptPolicy() ReoptPolicy { return reopt.DefaultPolicy() }

// Experiments.
type (
	// ExperimentScale selects Tiny/Small/Full experiment sizes.
	ExperimentScale = experiments.Scale
	// ExperimentEnv is a fully prepared evaluation environment.
	ExperimentEnv = experiments.Env
)

// Experiment scales.
const (
	ScaleTiny  = experiments.ScaleTiny
	ScaleSmall = experiments.ScaleSmall
	ScaleFull  = experiments.ScaleFull
)

// SetupExperiments prepares data, workloads and trained models for the
// paper's evaluation suite.
func SetupExperiments(scale ExperimentScale, seed int64) *ExperimentEnv {
	return experiments.Setup(scale, seed)
}

// RunExperiments regenerates every table and figure of the paper's §7,
// streaming rendered results to w.
func RunExperiments(env *ExperimentEnv, w io.Writer) error {
	return experiments.RunAll(env, w)
}
